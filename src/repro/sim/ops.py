"""Operations a simulated worker may yield to the engine.

A *worker* is a Python generator.  Between yields it executes ordinary
Python — atomically, as far as simulated time is concerned — and each
yielded operation tells the engine how simulated time passes or why the
processor blocks:

* :class:`Compute` — the processor is busy for a duration.
* :class:`Acquire` / :class:`Release` — contend for a :class:`SimLock`;
  blocked time is accounted as *interference loss* (paper Section 3.1).
* :class:`WaitWork` — block on a :class:`WorkSignal` until new work is
  announced; blocked time is accounted as *starvation loss*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .locks import SimLock, WorkSignal


class Op:
    """Base class of all simulator operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """Advance this processor's clock by ``units`` of busy time.

    The optional attribution fields do not affect scheduling — the
    engine charges ``units`` regardless — but an installed
    :mod:`repro.obs.critpath` recorder copies them onto the charged
    interval so the critical-path walker can blame path time on a cost
    primitive (``tag``), a tree node (``node``), and the node's e/r
    classification at charge time (``cls``).  ``parts`` decomposes a
    mixed charge (e.g. a serial-subtree chunk) into raw
    ``(primitive, weight)`` components.
    """

    units: float
    tag: str = ""
    node: str = ""
    cls: str = ""
    parts: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.units < 0:
            raise ValueError("compute duration must be non-negative")


@dataclass(frozen=True)
class Acquire(Op):
    """Block until the lock is granted to this processor (FIFO order)."""

    lock: "SimLock"


@dataclass(frozen=True)
class Release(Op):
    """Release a lock held by this processor."""

    lock: "SimLock"


@dataclass(frozen=True)
class WaitWork(Op):
    """Block until the signal is notified (new work or termination).

    ``seen_version`` is the signal version the worker observed when it
    decided to wait (while holding the heap lock).  If the signal was
    notified between that observation and this yield, the engine resumes
    the worker immediately instead of blocking — the classic lost-wakeup
    race, closed the same way a monitor's condition variable closes it.
    """

    signal: "WorkSignal"
    seen_version: int
