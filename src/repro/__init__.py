"""repro — reproduction of Steinberg & Solomon, "Searching Game Trees in
Parallel" (ICPP 1990).

The package implements the paper's ER (Evaluate-Refute) algorithm —
serial (Figure 8) and parallel (Section 6, problem heap with primary and
speculative queues) — together with every substrate it rests on: game
abstractions (synthetic random trees, tic-tac-toe, Connect Four, a
bitboard Othello engine), serial reference algorithms (negmax, alpha-beta
with and without deep cutoffs, aspiration), the Section 4 baseline
parallel algorithms (parallel aspiration, MWF, tree-splitting,
pv-splitting), a deterministic discrete-event multiprocessor simulator,
and the analysis layer that regenerates the paper's figures.

Quickstart::

    from repro import SearchProblem, alphabeta, er_search, parallel_er
    from repro.games import RandomGameTree

    problem = SearchProblem(RandomGameTree(degree=4, height=8, seed=7), depth=8)
    serial = alphabeta(problem)
    result = parallel_er(problem, n_processors=8)
    assert result.value == serial.value
    print("speedup:", result.speedup(serial.cost))

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from .analysis.experiments import er_scaling_curve, serial_baselines
from .analysis.losses import classify_work, loss_report
from .core.er_parallel import ERConfig, parallel_er
from .core.er_queues import SpecOrder
from .core.serial_er import er_search
from .costmodel import DEFAULT_COST_MODEL, FRICTIONLESS_COST_MODEL, CostModel
from .errors import (
    DeadlockError,
    GameError,
    IllegalMoveError,
    ReproError,
    SearchError,
    SimulationError,
)
from .games.base import Game, SearchProblem, subproblem
from .parallel import (
    ParallelResult,
    mwf,
    naive_split,
    parallel_aspiration,
    pv_splitting,
    tree_splitting,
)
from .parallel.multiproc import MultiprocResult, multiproc_er
from .parallel.threaded import threaded_er
from .engine import EngineConfig, GameEngine, play_match
from .search.alphabeta import alphabeta
from .search.aspiration import aspiration_search
from .search.negamax import negamax
from .search.negascout import negascout
from .search.stats import SearchResult, SearchStats
from .search.transposition import TranspositionTable, alphabeta_tt, iterative_deepening
from .workloads.suite import PROCESSOR_COUNTS, table3_suite

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "CostModel",
    "DEFAULT_COST_MODEL",
    "FRICTIONLESS_COST_MODEL",
    "SpecOrder",
    "ERConfig",
    # problems
    "Game",
    "SearchProblem",
    "subproblem",
    "table3_suite",
    "PROCESSOR_COUNTS",
    # serial algorithms
    "negamax",
    "alphabeta",
    "negascout",
    "aspiration_search",
    "er_search",
    "TranspositionTable",
    "alphabeta_tt",
    "iterative_deepening",
    # game-playing engine
    "GameEngine",
    "EngineConfig",
    "play_match",
    # parallel algorithms
    "parallel_er",
    "threaded_er",
    "multiproc_er",
    "MultiprocResult",
    "parallel_aspiration",
    "mwf",
    "tree_splitting",
    "pv_splitting",
    "naive_split",
    # results & analysis
    "SearchResult",
    "SearchStats",
    "ParallelResult",
    "serial_baselines",
    "er_scaling_curve",
    "classify_work",
    "loss_report",
    # errors
    "ReproError",
    "GameError",
    "IllegalMoveError",
    "SearchError",
    "SimulationError",
    "DeadlockError",
]
