"""Tests for parallel ER: correctness, protocol invariants, mechanisms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.er_parallel import ERConfig, parallel_er
from repro.core.er_queues import SpecOrder
from repro.core.serial_er import er_search
from repro.costmodel import FRICTIONLESS_COST_MODEL
from repro.errors import SearchError, SimulationError
from repro.games.base import SearchProblem
from repro.games.explicit import negmax_of_spec
from repro.games.othello import O1_ROOT, Othello
from repro.games.random_tree import RandomGameTree, SyntheticOrderedTree
from repro.games.tictactoe import TicTacToe
from repro.search.negamax import negamax

from conftest import explicit_problem, random_problem

leaf = st.integers(min_value=-50, max_value=50)
tree_spec = st.recursive(leaf, lambda child: st.lists(child, min_size=1, max_size=3), max_leaves=20)


class TestCorrectness:
    @given(tree_spec, st.integers(1, 6))
    @settings(max_examples=30)
    def test_equals_negamax_on_explicit_trees(self, spec, n_processors):
        result = parallel_er(explicit_problem(spec), n_processors)
        assert result.value == negmax_of_spec(spec)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16])
    def test_random_trees_all_processor_counts(self, n):
        for seed in range(4):
            problem = random_problem(3, 5, seed)
            truth = negamax(problem).value
            assert parallel_er(problem, n).value == truth

    @pytest.mark.parametrize("serial_depth", [0, 1, 2, 3, 4, 5, 100])
    def test_serial_cutover_everywhere(self, serial_depth):
        problem = random_problem(3, 5, seed=2)
        truth = negamax(problem).value
        config = ERConfig(serial_depth=serial_depth)
        for n in (1, 4):
            assert parallel_er(problem, n, config=config).value == truth

    @pytest.mark.parametrize(
        "flags",
        [
            dict(parallel_refutation=False),
            dict(early_choice=False),
            dict(multiple_e_children=False),
            dict(deep_cutoff_checks=False),
            dict(parallel_refutation=False, early_choice=False, multiple_e_children=False),
            dict(max_e_children=1),
        ],
    )
    def test_mechanism_ablations_stay_correct(self, flags):
        problem = random_problem(4, 4, seed=3)
        truth = negamax(problem).value
        config = ERConfig(serial_depth=2, **flags)
        for n in (1, 3, 9):
            assert parallel_er(problem, n, config=config).value == truth

    @pytest.mark.parametrize("order", list(SpecOrder))
    def test_spec_orderings_stay_correct(self, order):
        problem = random_problem(3, 5, seed=5)
        truth = negamax(problem).value
        config = ERConfig(serial_depth=2, spec_order=order)
        assert parallel_er(problem, 6, config=config).value == truth

    def test_ordered_trees_random_placement(self):
        for seed in range(3):
            tree = SyntheticOrderedTree(3, 5, seed=seed, best_child="random")
            problem = SearchProblem(tree, depth=5)
            result = parallel_er(problem, 4, config=ERConfig(serial_depth=3))
            assert result.value == float(tree.root_value)

    def test_tictactoe(self):
        problem = SearchProblem(TicTacToe(), depth=5)
        truth = negamax(problem).value
        assert parallel_er(problem, 6, config=ERConfig(serial_depth=2)).value == truth

    def test_othello_shallow(self):
        problem = SearchProblem(Othello(O1_ROOT), depth=3, sort_below_root=2)
        truth = negamax(problem).value
        assert parallel_er(problem, 4, config=ERConfig(serial_depth=2)).value == truth

    def test_single_leaf_tree(self):
        assert parallel_er(explicit_problem(13), 4).value == 13.0

    def test_depth_zero(self):
        problem = SearchProblem(RandomGameTree(3, 4, seed=0), depth=0)
        value = parallel_er(problem, 2).value
        assert value == problem.game.evaluate(problem.game.root())

    def test_frictionless_cost_model(self):
        problem = random_problem(3, 4, seed=1)
        truth = negamax(problem).value
        result = parallel_er(problem, 4, cost_model=FRICTIONLESS_COST_MODEL)
        assert result.value == truth
        assert result.report.interference_fraction() == 0.0


class TestValidation:
    def test_rejects_zero_processors(self):
        with pytest.raises(SearchError):
            parallel_er(explicit_problem([1, 2]), 0)

    def test_rejects_bad_config(self):
        with pytest.raises(SearchError):
            ERConfig(serial_depth=-1)
        with pytest.raises(SearchError):
            ERConfig(chunk_units=0)
        with pytest.raises(SearchError):
            ERConfig(max_e_children=0)

    def test_event_budget_enforced(self):
        problem = random_problem(4, 5, seed=0)
        with pytest.raises(SimulationError):
            parallel_er(problem, 4, config=ERConfig(max_events=50))


class TestDeterminism:
    def test_identical_runs_identical_reports(self):
        problem = random_problem(3, 5, seed=9)
        a = parallel_er(problem, 7, config=ERConfig(serial_depth=3))
        b = parallel_er(problem, 7, config=ERConfig(serial_depth=3))
        assert a.sim_time == b.sim_time
        assert a.stats.nodes_generated == b.stats.nodes_generated
        assert a.extras == b.extras


class TestMechanisms:
    def test_speculation_reduces_starvation(self):
        """The paper's central claim: with speculative work enabled,
        many processors stay busy; without it they starve."""
        problem = random_problem(4, 6, seed=101)
        on = parallel_er(problem, 16, config=ERConfig(serial_depth=4))
        off = parallel_er(
            problem,
            16,
            config=ERConfig(serial_depth=4, early_choice=False, multiple_e_children=False),
        )
        assert on.report.starvation_fraction() < off.report.starvation_fraction()
        assert on.sim_time < off.sim_time

    def test_speculation_costs_nodes(self):
        problem = random_problem(4, 6, seed=101)
        on = parallel_er(problem, 16, config=ERConfig(serial_depth=4))
        off = parallel_er(
            problem,
            16,
            config=ERConfig(serial_depth=4, early_choice=False, multiple_e_children=False),
        )
        assert on.stats.nodes_generated >= off.stats.nodes_generated

    def test_one_processor_close_to_serial(self):
        """A single simulated processor must not blow up relative to
        serial ER (modest scheduling overhead only)."""
        problem = random_problem(4, 6, seed=42)
        serial = er_search(problem)
        par = parallel_er(problem, 1, config=ERConfig(serial_depth=4))
        assert par.sim_time <= serial.cost * 1.6

    def test_speedup_with_more_processors(self):
        problem = random_problem(4, 7, seed=77)
        config = ERConfig(serial_depth=4)
        t1 = parallel_er(problem, 1, config=config).sim_time
        t8 = parallel_er(problem, 8, config=config).sim_time
        assert t8 < t1 / 2  # at least 2x speedup from 8 processors

    def test_counters_populated(self):
        problem = random_problem(3, 5, seed=1)
        result = parallel_er(problem, 4, config=ERConfig(serial_depth=3))
        assert result.extras["serial_searches"] > 0
        assert result.extras["pops_primary"] > 0

    def test_trace_enabled_collects_paths(self):
        problem = random_problem(3, 4, seed=1)
        result = parallel_er(problem, 2, config=ERConfig(serial_depth=2), trace=True)
        assert result.stats.trace is not None
        assert () in result.stats.trace
        assert any(len(p) == 4 for p in result.stats.trace)

    def test_interference_grows_with_processors(self):
        """Lock contention is a real, measured phenomenon (Section 7)."""
        problem = random_problem(4, 6, seed=55)
        config = ERConfig(serial_depth=5)
        few = parallel_er(problem, 2, config=config)
        many = parallel_er(problem, 16, config=config)
        assert many.report.total_lock_wait >= few.report.total_lock_wait
