"""Tests for the Section 3.1 loss decomposition."""

import pytest

from repro.analysis.losses import classify_work, loss_report
from repro.core.er_parallel import ERConfig, parallel_er
from repro.search.alphabeta import alphabeta
from repro.search.stats import SearchStats

from conftest import random_problem


class TestClassifyWork:
    def test_disjoint_sets(self):
        reference = {(0,), (1,)}
        parallel = {(2,), (3,)}
        work = classify_work(reference, parallel)
        assert work.mandatory_examined == 0
        assert work.speculative_examined == 2
        assert work.mandatory_missed == 2
        assert work.speculative_fraction == 1.0

    def test_identical_sets(self):
        nodes = {(0,), (0, 1), ()}
        work = classify_work(nodes, set(nodes))
        assert work.speculative_examined == 0
        assert work.expansion_ratio == 1.0
        assert work.speculative_fraction == 0.0

    def test_superset(self):
        reference = {(0,)}
        parallel = {(0,), (1,), (2,)}
        work = classify_work(reference, parallel)
        assert work.mandatory_examined == 1
        assert work.speculative_examined == 2
        assert work.expansion_ratio == 3.0

    def test_empty_parallel(self):
        work = classify_work({(0,)}, set())
        assert work.speculative_fraction == 0.0

    def test_empty_reference(self):
        work = classify_work(set(), {(0,)})
        assert work.expansion_ratio == 1.0


class TestLossReport:
    def test_end_to_end(self):
        problem = random_problem(3, 5, seed=3)
        reference = SearchStats.with_trace()
        serial = alphabeta(problem, stats=reference)
        result = parallel_er(problem, 4, config=ERConfig(serial_depth=3), trace=True)
        report = loss_report(result, serial.cost, reference)
        assert report.n_processors == 4
        assert 0.0 <= report.starvation_fraction <= 1.0
        assert 0.0 <= report.interference_fraction <= 1.0
        assert 0.0 <= report.speculative_fraction <= 1.0
        assert report.work.parallel_total > 0
        # The parallel run must have visited most of the mandatory work.
        assert report.work.mandatory_examined > 0.5 * report.work.reference_total

    def test_requires_traced_parallel_run(self):
        problem = random_problem(3, 4, seed=1)
        reference = SearchStats.with_trace()
        serial = alphabeta(problem, stats=reference)
        untraced = parallel_er(problem, 2, config=ERConfig(serial_depth=2))
        with pytest.raises(ValueError):
            loss_report(untraced, serial.cost, reference)

    def test_requires_traced_reference(self):
        problem = random_problem(3, 4, seed=1)
        plain = SearchStats()
        serial = alphabeta(problem, stats=plain)
        traced = parallel_er(problem, 2, config=ERConfig(serial_depth=2), trace=True)
        with pytest.raises(ValueError):
            loss_report(traced, serial.cost, plain)

    def test_more_processors_more_speculation(self):
        problem = random_problem(4, 5, seed=9)
        reference = SearchStats.with_trace()
        serial = alphabeta(problem, stats=reference)
        few = parallel_er(problem, 1, config=ERConfig(serial_depth=3), trace=True)
        many = parallel_er(problem, 12, config=ERConfig(serial_depth=3), trace=True)
        few_report = loss_report(few, serial.cost, reference)
        many_report = loss_report(many, serial.cost, reference)
        assert many_report.work.parallel_total >= few_report.work.parallel_total
