"""Unit tests for work accounting and parallel-result arithmetic."""

import pytest

from repro.costmodel import CostModel
from repro.parallel.base import ParallelResult
from repro.search.stats import OrderingPolicy, SearchStats, argsort_by_static_value
from repro.sim.metrics import ProcessorMetrics, SimReport


def make_result(makespan: float, n: int) -> ParallelResult:
    report = SimReport(
        makespan=makespan,
        processors=[ProcessorMetrics(busy=makespan, finish_time=makespan)] * n,
    )
    return ParallelResult(
        value=0.0, n_processors=n, report=report, stats=SearchStats(), algorithm="x"
    )


class TestSearchStats:
    def test_expand_charges_and_counts(self):
        model = CostModel(expand_base=2.0, expand_per_child=1.0)
        stats = SearchStats()
        charged = stats.on_expand((0,), 3, model)
        assert charged == 5.0
        assert stats.interior_visits == 1
        assert stats.nodes_generated == 3
        assert stats.cost == 5.0

    def test_leaf_charges(self):
        model = CostModel(static_eval=7.0)
        stats = SearchStats()
        assert stats.on_leaf((1,), model) == 7.0
        assert stats.leaf_evals == 1

    def test_ordering_charges(self):
        model = CostModel(static_eval=3.0)
        stats = SearchStats()
        assert stats.on_ordering(4, model) == 12.0
        assert stats.ordering_evals == 4

    def test_nodes_examined(self):
        stats = SearchStats(interior_visits=3, leaf_evals=5)
        assert stats.nodes_examined == 8

    def test_merge_counters(self):
        a = SearchStats(interior_visits=1, leaf_evals=2, cost=10.0, cutoffs=1)
        b = SearchStats(interior_visits=3, leaf_evals=4, cost=5.0, cutoffs=2)
        a.merge(b)
        assert a.interior_visits == 4
        assert a.leaf_evals == 6
        assert a.cost == 15.0
        assert a.cutoffs == 3

    def test_merge_traces(self):
        a = SearchStats.with_trace()
        b = SearchStats.with_trace()
        a.trace.add((0,))
        b.trace.add((1,))
        a.merge(b)
        assert a.trace == {(0,), (1,)}

    def test_merge_trace_into_untraced_is_ignored(self):
        a = SearchStats()
        b = SearchStats.with_trace()
        b.trace.add((1,))
        a.merge(b)
        assert a.trace is None

    def test_trace_records_visits(self):
        stats = SearchStats.with_trace()
        stats.on_expand((0,), 2, CostModel())
        stats.on_leaf((0, 1), CostModel())
        assert stats.trace == {(0,), (0, 1)}


class TestOrderingHelpers:
    class FakeGame:
        def evaluate(self, child):
            return {"a": 3.0, "b": 1.0, "c": 2.0}[child]

    def test_argsort_by_static_value(self):
        order = argsort_by_static_value(self.FakeGame(), ["a", "b", "c"])
        assert order == [1, 2, 0]

    def test_ordering_policy_charges(self):
        stats = SearchStats()
        policy = OrderingPolicy(cost_model=CostModel(static_eval=2.0), stats=stats)
        order = policy.argsort(self.FakeGame(), ["a", "b", "c"])
        assert order == [1, 2, 0]
        assert stats.ordering_evals == 3
        assert stats.cost == 6.0


class TestParallelResult:
    def test_speedup_and_efficiency(self):
        result = make_result(makespan=50.0, n=4)
        assert result.speedup(200.0) == 4.0
        assert result.efficiency(200.0) == 1.0

    def test_zero_makespan_is_infinite_speedup(self):
        result = make_result(makespan=0.0, n=2)
        assert result.speedup(10.0) == float("inf")

    def test_sim_time_is_makespan(self):
        assert make_result(25.0, 1).sim_time == 25.0


class TestSimReportMath:
    def test_empty_report(self):
        report = SimReport(makespan=0.0, processors=[])
        assert report.utilization == 1.0
        assert report.starvation_fraction() == 0.0
        assert report.interference_fraction() == 0.0

    def test_fractions(self):
        procs = [
            ProcessorMetrics(busy=6.0, lock_wait=2.0, starve_wait=2.0, finish_time=10.0),
            ProcessorMetrics(busy=10.0, finish_time=10.0),
        ]
        report = SimReport(makespan=10.0, processors=procs)
        assert report.utilization == pytest.approx(16.0 / 20.0)
        assert report.interference_fraction() == pytest.approx(2.0 / 20.0)
        assert report.starvation_fraction() == pytest.approx(2.0 / 20.0)
