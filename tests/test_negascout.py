"""Tests for NegaScout (minimal-window verification search)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.games.base import SearchProblem
from repro.games.explicit import ExplicitTree, negmax_of_spec
from repro.games.random_tree import IncrementalGameTree, SyntheticOrderedTree
from repro.search.alphabeta import alphabeta
from repro.search.negamax import negamax
from repro.search.negascout import negascout

from conftest import explicit_problem, random_problem

leaf = st.integers(min_value=-50, max_value=50)
tree_spec = st.recursive(leaf, lambda child: st.lists(child, min_size=1, max_size=3), max_leaves=25)


class TestCorrectness:
    @given(tree_spec)
    def test_equals_negamax(self, spec):
        assert negascout(explicit_problem(spec)).value == negmax_of_spec(spec)

    def test_random_trees(self, small_random_problems):
        for problem in small_random_problems:
            assert negascout(problem).value == negamax(problem).value

    def test_fractional_values_stay_exact(self):
        """The +1 scout step assumes integral evaluators; fractional trees
        must still come out exact via the re-search fallback."""
        spec = [[1.5, 2.25], [1.75, [0.5, 3.125]], [2.0, 1.125]]
        assert negascout(explicit_problem(spec)).value == negmax_of_spec(spec)

    @given(tree_spec, st.integers(-60, 60), st.integers(1, 40))
    def test_window_semantics(self, spec, low, width):
        truth = negmax_of_spec(spec)
        result = negascout(explicit_problem(spec), alpha=low, beta=low + width)
        if low < truth < low + width:
            assert result.value == truth

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            negascout(explicit_problem([1, 2]), alpha=2, beta=2)


class TestEfficiency:
    def test_beats_alphabeta_on_ordered_trees(self):
        """Scout probes refute non-PV children cheaply when ordering is
        good — NegaScout's raison d'etre."""
        tree = SyntheticOrderedTree(4, 8, seed=5)
        problem = SearchProblem(tree, depth=8)
        ns = negascout(problem)
        ab = alphabeta(problem)
        assert ns.value == ab.value
        assert ns.stats.leaf_evals <= ab.stats.leaf_evals

    def test_competitive_on_strongly_ordered_random(self):
        tree = IncrementalGameTree(4, 7, seed=2, noise=0.2)
        problem = SearchProblem(tree, depth=7, sort_below_root=7)
        ns = negascout(problem)
        ab = alphabeta(problem)
        assert ns.value == ab.value
        assert ns.stats.leaf_evals < ab.stats.leaf_evals * 1.3
