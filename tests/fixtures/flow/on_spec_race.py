"""Regression fixture: the historical ``on_spec`` race, reintroduced.

This is a minimal self-contained replica of the pre-PR-2 engine shape:
``pop_work`` cleared the popped node's ``on_spec`` flag *under the heap
lock*, while ``maybe_push_spec`` sets it under the tree lock.  Two
different guards for one shared field means the pair of writes can
interleave — the exact race the runtime detector caught dynamically and
the flow analyzer must now catch statically (VER102, inconsistent
guard for ``on_spec``, anchored at the ``pop_work`` write site).

The module is never imported by the test suite; it is parsed and fed to
``repro.verify.flow.analyze_sources`` as an in-memory project.
"""

from repro.sim.ops import Acquire, Compute, Release, WaitWork


class _Context:
    def pop_work(self):
        if self.primary:
            return self.primary.pop(), False
        spec = self.speculative.pop()
        if spec is not None:
            spec.on_spec = False  # BUG: tree state written under the heap lock
        return spec, spec is not None

    def maybe_push_spec(self, node):
        if not node.on_spec:
            node.on_spec = True
            self.speculative.push(node)


def _process(ctx, node, stats):
    yield Acquire(ctx.tree_lock)
    yield Compute(1, tag="bookkeeping")
    node.value = max(node.value, 0)
    ctx.maybe_push_spec(node)
    yield Release(ctx.tree_lock)


def _worker(ctx, stats, pid=0):
    while not ctx.done:
        yield Acquire(ctx.heap_lock)
        yield Compute(1, tag="heap_op")
        node, from_spec = ctx.pop_work()
        yield Release(ctx.heap_lock)
        if node is None:
            yield WaitWork(ctx.work, 0)
            continue
        yield from _process(ctx, node, stats)
