"""Tests for the Section 8 distributed work-queue extension."""

import pytest

from repro.core.er_parallel import ERConfig, parallel_er
from repro.parallel.threaded import threaded_er
from repro.search.negamax import negamax

from conftest import random_problem


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_matches_negamax(self, n):
        for seed in range(3):
            problem = random_problem(3, 5, seed)
            truth = negamax(problem).value
            config = ERConfig(serial_depth=3, distributed_heap=True)
            assert parallel_er(problem, n, config=config).value == truth

    def test_with_all_mechanism_ablations(self):
        problem = random_problem(4, 4, seed=7)
        truth = negamax(problem).value
        for flags in (
            dict(parallel_refutation=False),
            dict(early_choice=False, multiple_e_children=False),
            dict(max_e_children=1),
        ):
            config = ERConfig(serial_depth=2, distributed_heap=True, **flags)
            assert parallel_er(problem, 6, config=config).value == truth

    def test_threaded_distributed(self):
        problem = random_problem(3, 4, seed=4)
        truth = negamax(problem).value
        config = ERConfig(serial_depth=2, distributed_heap=True)
        for n in (2, 4):
            value, _ = threaded_er(problem, n, config=config)
            assert value == truth

    def test_deterministic(self):
        problem = random_problem(3, 5, seed=11)
        config = ERConfig(serial_depth=3, distributed_heap=True)
        a = parallel_er(problem, 8, config=config)
        b = parallel_er(problem, 8, config=config)
        assert a.sim_time == b.sim_time
        assert a.extras == b.extras


class TestBehaviour:
    def test_steals_occur_with_many_processors(self):
        problem = random_problem(4, 6, seed=42)
        config = ERConfig(serial_depth=4, distributed_heap=True)
        result = parallel_er(problem, 8, config=config)
        assert result.extras["steals"] > 0

    def test_no_steals_with_one_processor(self):
        problem = random_problem(3, 4, seed=1)
        config = ERConfig(serial_depth=2, distributed_heap=True)
        result = parallel_er(problem, 1, config=config)
        assert result.extras["steals"] == 0

    def test_reduces_interference(self):
        """The Section 8 prediction: distributing the work queues reduces
        processor interaction (lock blocking)."""
        problem = random_problem(4, 7, seed=9)
        shared = parallel_er(problem, 16, config=ERConfig(serial_depth=4))
        distributed = parallel_er(
            problem, 16, config=ERConfig(serial_depth=4, distributed_heap=True)
        )
        assert (
            distributed.report.total_lock_wait <= shared.report.total_lock_wait
        )

    def test_comparable_throughput(self):
        problem = random_problem(4, 6, seed=3)
        shared = parallel_er(problem, 8, config=ERConfig(serial_depth=4))
        distributed = parallel_er(
            problem, 8, config=ERConfig(serial_depth=4, distributed_heap=True)
        )
        assert distributed.sim_time < shared.sim_time * 1.5
