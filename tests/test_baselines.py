"""Tests for the Section 4 baseline parallel algorithms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.games.base import NEG_INF, POS_INF, SearchProblem
from repro.games.explicit import negmax_of_spec
from repro.games.random_tree import (
    IncrementalGameTree,
    RandomGameTree,
    SyntheticOrderedTree,
)
from repro.parallel import (
    aspiration_windows,
    mwf,
    naive_split,
    parallel_aspiration,
    processor_tree_height,
    pv_splitting,
    tree_splitting,
)
from repro.search.alphabeta import alphabeta
from repro.search.negamax import negamax

from conftest import explicit_problem, random_problem

leaf = st.integers(min_value=-50, max_value=50)
tree_spec = st.recursive(leaf, lambda child: st.lists(child, min_size=1, max_size=3), max_leaves=20)

ALGOS = [parallel_aspiration, mwf, tree_splitting, pv_splitting, naive_split]
ALGO_IDS = ["aspiration", "mwf", "tree-split", "pv-split", "naive"]


class TestCorrectness:
    @pytest.mark.parametrize("algo", ALGOS, ids=ALGO_IDS)
    @pytest.mark.parametrize("k", [1, 2, 5, 9])
    def test_random_trees(self, algo, k):
        for seed in range(3):
            problem = random_problem(3, 4, seed)
            truth = negamax(problem).value
            assert algo(problem, k).value == truth

    @pytest.mark.parametrize("algo", ALGOS, ids=ALGO_IDS)
    def test_explicit_trees(self, algo):
        for spec in ([1, 2], [[3, -4], [5, [6, 7]]], [[1], [2], [3]], 11):
            problem = explicit_problem(spec)
            assert algo(problem, 4).value == negmax_of_spec(spec)

    @pytest.mark.parametrize("algo", ALGOS, ids=ALGO_IDS)
    def test_ordered_trees(self, algo):
        tree = SyntheticOrderedTree(3, 4, seed=1, best_child="random")
        problem = SearchProblem(tree, depth=4)
        assert algo(problem, 7).value == float(tree.root_value)

    @pytest.mark.parametrize("algo", ALGOS, ids=ALGO_IDS)
    def test_rejects_zero_processors(self, algo):
        with pytest.raises(SearchError):
            algo(random_problem(2, 2, 0), 0)


class TestAspirationWindows:
    @given(st.floats(-100, 100), st.floats(0.5, 50), st.integers(1, 12))
    def test_partition_is_total_and_disjoint(self, estimate, width, k):
        windows = aspiration_windows(estimate, width, k)
        assert len(windows) == k
        assert windows[0][0] == NEG_INF
        assert windows[-1][1] == POS_INF
        for (a1, b1), (a2, b2) in zip(windows, windows[1:]):
            assert b1 == a2  # contiguous
            assert a1 < b1 and a2 < b2

    def test_single_window_is_open(self):
        assert aspiration_windows(0, 10, 1) == [(NEG_INF, POS_INF)]

    def test_validation(self):
        with pytest.raises(SearchError):
            aspiration_windows(0, 0, 3)
        with pytest.raises(SearchError):
            aspiration_windows(0, 10, 0)


class TestAspirationBehaviour:
    def test_speedup_plateaus(self):
        """Baudet's observation: speedup is bounded regardless of k."""
        problem = SearchProblem(IncrementalGameTree(4, 7, seed=2, noise=0.5), depth=7)
        serial = alphabeta(problem).stats.cost
        speedups = {
            k: parallel_aspiration(problem, k).speedup(serial) for k in (1, 4, 16, 32)
        }
        assert speedups[4] > speedups[1]
        # Doubling processors 16 -> 32 must gain very little.
        assert speedups[32] < speedups[16] * 1.5

    def test_extras_reports_winning_window(self):
        problem = random_problem(3, 4, seed=1)
        result = parallel_aspiration(problem, 4)
        low, high = result.extras["winning_window"]
        assert low < result.value < high


class TestTreeSplitting:
    def test_sqrt_k_shape_on_best_first_trees(self):
        """Fishburn: efficiency O(1/sqrt(k)) on perfectly ordered trees,
        i.e. speedup ~ c*sqrt(k)."""
        tree = SyntheticOrderedTree(4, 8, seed=3)
        problem = SearchProblem(tree, depth=8)
        serial = alphabeta(problem).stats.cost
        speedups = {k: tree_splitting(problem, k).speedup(serial) for k in (3, 7, 15)}
        for k, s in speedups.items():
            ratio = s / math.sqrt(k)
            assert 0.3 < ratio < 1.5, (k, s)
        # Growing, but sublinearly.
        assert speedups[15] > speedups[3]
        assert speedups[15] / 15 < speedups[3] / 3

    def test_near_linear_on_worst_first_trees(self):
        """When no cutoffs exist, tree-splitting approaches linear speedup."""
        tree = SyntheticOrderedTree(4, 6, seed=3, best_child="last")
        problem = SearchProblem(tree, depth=6)
        serial = alphabeta(problem).stats.cost
        result = tree_splitting(problem, 21, branching=4)
        assert result.speedup(serial) > 5.0

    def test_processor_tree_height(self):
        assert processor_tree_height(1, 2) == 0
        assert processor_tree_height(3, 2) == 1
        assert processor_tree_height(7, 2) == 2
        assert processor_tree_height(4, 2) == 2  # partial level counts
        assert processor_tree_height(13, 3) == 2

    def test_height_validation(self):
        with pytest.raises(SearchError):
            processor_tree_height(0, 2)
        with pytest.raises(SearchError):
            processor_tree_height(4, 1)


class TestPVSplitting:
    def test_efficiency_decays_with_k(self):
        """Marsland & Popowich: efficiency drops quickly as k grows."""
        tree = IncrementalGameTree(6, 6, seed=4, noise=0.3)
        problem = SearchProblem(tree, depth=6, sort_below_root=6)
        serial = alphabeta(problem).stats.cost
        eff = {
            k: pv_splitting(problem, k).efficiency(serial) for k in (1, 3, 7, 15)
        }
        assert eff[3] > eff[15]

    def test_split_height_override(self):
        problem = random_problem(3, 5, seed=2)
        truth = negamax(problem).value
        assert pv_splitting(problem, 5, split_height=2).value == truth


class TestMWF:
    def test_speedup_plateaus(self):
        """Akl et al.: speedup rises fast then plateaus; extra processors
        past ~10 contribute almost nothing."""
        problem = random_problem(8, 4, seed=5)
        serial = alphabeta(problem, deep_cutoffs=False).stats.cost
        speedups = {k: mwf(problem, k).speedup(serial) for k in (1, 4, 12, 24)}
        assert speedups[4] > speedups[1]
        assert speedups[24] < speedups[12] * 1.15  # the plateau

    def test_speculative_task_accounting(self):
        result = mwf(random_problem(4, 4, seed=1), 4)
        assert result.extras["speculative_tasks"] >= 0

    def test_single_leaf(self):
        assert mwf(explicit_problem(9), 3).value == 9.0


class TestNaiveSplit:
    def test_searches_more_than_alphabeta(self):
        problem = random_problem(4, 5, seed=6)
        serial_nodes = alphabeta(problem).stats.nodes_generated
        result = naive_split(problem, 4)
        assert result.stats.nodes_generated > serial_nodes

    def test_low_efficiency_on_many_processors(self):
        problem = random_problem(4, 5, seed=6)
        serial = alphabeta(problem).stats.cost
        result = naive_split(problem, 16)
        assert result.efficiency(serial) < 0.8
