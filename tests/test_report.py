"""Tests for the consolidated reproduction report."""

from repro.analysis.report import build_report


class TestBuildReport:
    def test_small_report(self):
        report = build_report("reduced", trees=("R3",), processor_counts=(1, 4, 16))
        assert "R3" in report.markdown
        assert "speedup@16" in report.markdown
        assert "Speculation ablation" in report.markdown
        assert "R3" in report.curves

    def test_report_tables_are_markdown(self):
        report = build_report("reduced", trees=("R3",), processor_counts=(1, 4, 16))
        header_rows = [l for l in report.markdown.splitlines() if l.startswith("|---")]
        assert len(header_rows) >= 3

    def test_curve_data_consistent_with_text(self):
        report = build_report("reduced", trees=("R3",), processor_counts=(1, 16))
        last = report.curves["R3"].points[-1]
        assert f"{last.speedup:.1f}" in report.markdown


class TestCLIReport:
    def test_cli_report(self, capsys):
        from repro.cli import main

        assert main(["report", "--processors", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "| R1 |" in out
