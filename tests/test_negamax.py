"""Unit tests for the negmax procedure (paper Section 2)."""

from repro.costmodel import CostModel
from repro.games.base import SearchProblem
from repro.games.explicit import ExplicitTree, negmax_of_spec
from repro.games.random_tree import RandomGameTree
from repro.search.negamax import negamax
from repro.search.stats import SearchStats

from conftest import explicit_problem


class TestValues:
    def test_single_leaf(self):
        assert negamax(explicit_problem(5)).value == 5.0

    def test_one_level(self):
        # Parent takes max of negated children.
        assert negamax(explicit_problem([3, -1, 2])).value == 1.0

    def test_two_levels(self):
        spec = [[4, 2], [6, 8]]
        assert negamax(explicit_problem(spec)).value == negmax_of_spec(spec)

    def test_deep_alternation(self):
        spec = [[[1, 2], [3, 4]], [[5, 6], [7, 8]]]
        assert negamax(explicit_problem(spec)).value == negmax_of_spec(spec)

    def test_asymmetric_tree(self):
        spec = [5, [1, [2, 3]], [[4]]]
        assert negamax(explicit_problem(spec)).value == negmax_of_spec(spec)


class TestPrincipalVariation:
    def test_pv_reaches_optimal_leaf(self):
        spec = [[9, 1], [7, 3]]
        result = negamax(explicit_problem(spec))
        game = ExplicitTree(spec)
        # Following the PV must land on a leaf worth the root value
        # (sign-adjusted by depth parity).
        position = game.root()
        for move in result.pv:
            position = game.children(position)[move]
        leaf = game.evaluate(position)
        sign = -1 if len(result.pv) % 2 else 1
        assert sign * leaf == result.value

    def test_pv_length_equals_height(self):
        problem = explicit_problem([[1, 2], [3, 4]])
        assert len(negamax(problem).pv) == 2


class TestHorizon:
    def test_depth_zero_evaluates_root(self):
        game = ExplicitTree([[1, 2], [3, 4]])
        problem = SearchProblem(game=game, depth=0)
        # With a perfect interior evaluator the root static value is negmax.
        assert negamax(problem).value == negmax_of_spec([[1, 2], [3, 4]])

    def test_truncated_search_uses_static_values(self):
        game = ExplicitTree([[10, 20], [30, 40]])
        problem = SearchProblem(game=game, depth=1)
        # Children statics (perfect) are -10 and -30; root = max(10, 30).
        assert negamax(problem).value == 30.0


class TestAccounting:
    def test_full_tree_leaf_count(self):
        problem = SearchProblem(RandomGameTree(3, 4, seed=0), depth=4)
        result = negamax(problem)
        assert result.stats.leaf_evals == 3**4
        assert result.stats.interior_visits == 1 + 3 + 9 + 27
        assert result.stats.nodes_generated == 3 + 9 + 27 + 81

    def test_cost_model_charged(self):
        model = CostModel(expand_base=0, expand_per_child=0, static_eval=1.0)
        problem = SearchProblem(RandomGameTree(2, 3, seed=0), depth=3)
        result = negamax(problem, cost_model=model)
        assert result.stats.cost == 8.0  # one unit per leaf

    def test_external_stats_accumulate(self):
        stats = SearchStats()
        problem = explicit_problem([1, 2])
        negamax(problem, stats=stats)
        negamax(problem, stats=stats)
        assert stats.leaf_evals == 4

    def test_trace_records_all_paths(self):
        stats = SearchStats.with_trace()
        negamax(explicit_problem([[1, 2], [3, 4]]), stats=stats)
        assert stats.trace == {(), (0,), (1,), (0, 0), (0, 1), (1, 0), (1, 1)}
