"""Cross-module integration tests: every algorithm, every game, one truth.

The strongest correctness statement in the suite: for a battery of games
(synthetic and real), all seven search algorithms — negmax, both
alpha-beta variants, serial ER, parallel ER, and all four baselines —
must agree exactly on the root value.
"""

import pytest

from repro.core.er_parallel import ERConfig, parallel_er
from repro.core.serial_er import er_search
from repro.games.base import SearchProblem
from repro.games.connect4 import ConnectFour
from repro.games.othello import O2_ROOT, Othello
from repro.games.random_tree import IncrementalGameTree, RandomGameTree
from repro.games.tictactoe import TicTacToe
from repro.parallel import mwf, naive_split, parallel_aspiration, pv_splitting, tree_splitting
from repro.parallel.threaded import threaded_er
from repro.search.alphabeta import alphabeta
from repro.search.aspiration import aspiration_search
from repro.search.negamax import negamax

PROBLEMS = [
    pytest.param(SearchProblem(RandomGameTree(3, 5, seed=17), depth=5), id="random-3x5"),
    pytest.param(SearchProblem(RandomGameTree(6, 3, seed=8), depth=3), id="random-6x3"),
    pytest.param(
        SearchProblem(IncrementalGameTree(4, 4, seed=2, noise=0.3), depth=4, sort_below_root=4),
        id="incremental-sorted",
    ),
    pytest.param(SearchProblem(TicTacToe(), depth=5), id="tictactoe-5"),
    pytest.param(SearchProblem(ConnectFour(width=5, height=4), depth=4), id="connect4-4"),
    pytest.param(SearchProblem(Othello(O2_ROOT), depth=2, sort_below_root=2), id="othello-2"),
]


@pytest.mark.parametrize("problem", PROBLEMS)
def test_all_algorithms_agree(problem):
    truth = negamax(problem).value
    assert alphabeta(problem).value == truth
    assert alphabeta(problem, deep_cutoffs=False).value == truth
    assert er_search(problem).value == truth
    assert aspiration_search(problem, guess=truth - 3, delta=10).result.value == truth
    assert parallel_er(problem, 5, config=ERConfig(serial_depth=2)).value == truth
    assert parallel_aspiration(problem, 3).value == truth
    assert mwf(problem, 3).value == truth
    assert tree_splitting(problem, 7).value == truth
    assert pv_splitting(problem, 7).value == truth
    assert naive_split(problem, 3).value == truth
    threaded_value, _ = threaded_er(problem, 3, config=ERConfig(serial_depth=2))
    assert threaded_value == truth


class TestEndToEndPipeline:
    def test_figure_pipeline_on_reduced_r3(self):
        """Exercise the full experiment pipeline the benchmarks rely on."""
        from repro.analysis import cached_curve

        curve = cached_curve("reduced", "R3", (1, 4))
        assert curve.points[1].speedup > 1.0
        assert curve.serial.alphabeta.value == curve.serial.er.value

    def test_loss_pipeline_consistency(self):
        """Loss fractions plus utilization must roughly account for the
        processor-time budget."""
        from repro.analysis import loss_report, serial_baselines
        from repro.search.stats import SearchStats
        from repro.workloads import table3_suite

        spec = table3_suite("reduced")["R3"]
        problem = spec.problem()
        reference = SearchStats.with_trace()
        alphabeta(problem, stats=reference)
        base = serial_baselines(spec)
        result = parallel_er(problem, 4, config=ERConfig(serial_depth=spec.serial_depth), trace=True)
        report = loss_report(result, base.best_time, reference)
        accounted = (
            result.report.utilization
            + report.starvation_fraction
            + report.interference_fraction
        )
        assert accounted == pytest.approx(1.0, abs=0.05)

    def test_er_beats_naive_split(self):
        """Sanity: the paper's algorithm must dominate the straw man."""
        problem = SearchProblem(RandomGameTree(4, 6, seed=31), depth=6)
        serial = alphabeta(problem).stats.cost
        er = parallel_er(problem, 8, config=ERConfig(serial_depth=4))
        naive = naive_split(problem, 8)
        assert er.speedup(serial) > naive.speedup(serial)
