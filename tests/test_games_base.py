"""Unit tests for the game/search-problem abstractions."""

import pytest

from repro.errors import SearchError
from repro.games.base import Line, RootedGame, SearchProblem, follow_path, subproblem
from repro.games.explicit import ExplicitTree
from repro.games.random_tree import RandomGameTree
from repro.search.negamax import negamax


class TestSearchProblem:
    def test_rejects_negative_depth(self):
        with pytest.raises(SearchError):
            SearchProblem(RandomGameTree(2, 2), depth=-1)

    def test_rejects_negative_sort(self):
        with pytest.raises(SearchError):
            SearchProblem(RandomGameTree(2, 2), depth=2, sort_below_root=-1)

    def test_horizon(self):
        problem = SearchProblem(RandomGameTree(2, 5), depth=3)
        assert not problem.is_horizon(2)
        assert problem.is_horizon(3)
        assert problem.is_horizon(4)

    def test_should_sort_window(self):
        problem = SearchProblem(RandomGameTree(2, 5), depth=5, sort_below_root=2)
        assert problem.should_sort(0)
        assert problem.should_sort(1)
        assert not problem.should_sort(2)

    def test_sort_disabled_by_default(self):
        problem = SearchProblem(RandomGameTree(2, 5), depth=5)
        assert not problem.should_sort(0)


class TestRootedGame:
    def test_reroots(self):
        game = ExplicitTree([[1, 2], [3, 4]])
        child = game.children(game.root())[1]
        rooted = RootedGame(game, child)
        assert rooted.root() == child
        assert len(rooted.children(rooted.root())) == 2
        assert rooted.evaluate(rooted.children(child)[0]) == 3.0

    def test_subproblem_depth_and_sort_shift(self):
        problem = SearchProblem(RandomGameTree(2, 6), depth=6, sort_below_root=3)
        child = problem.game.children(problem.game.root())[0]
        sub = subproblem(problem, child, ply=2)
        assert sub.depth == 4
        assert sub.sort_below_root == 1

    def test_subproblem_sort_floor(self):
        problem = SearchProblem(RandomGameTree(2, 6), depth=6, sort_below_root=1)
        child = problem.game.children(problem.game.root())[0]
        assert subproblem(problem, child, ply=4).sort_below_root == 0

    def test_subproblem_rejects_too_deep(self):
        problem = SearchProblem(RandomGameTree(2, 3), depth=3)
        with pytest.raises(SearchError):
            subproblem(problem, problem.game.root(), ply=4)

    def test_subproblem_value_consistency(self):
        """Negmax of a subtree through the wrapper equals direct descent."""
        game = RandomGameTree(3, 4, seed=9)
        problem = SearchProblem(game, depth=4)
        child = game.children(game.root())[2]
        sub = subproblem(problem, child, ply=1)
        direct = negamax(sub).value
        # Recompute by hand from the explicit definition.
        def nm(pos, remaining):
            kids = game.children(pos) if remaining else ()
            if not kids:
                return game.evaluate(pos)
            return max(-nm(k, remaining - 1) for k in kids)

        assert direct == nm(child, 3)


class TestFollowPath:
    def test_follow(self):
        game = ExplicitTree([[1, 2], [3, 4]])
        pos = follow_path(game, (1, 0))
        assert game.evaluate(pos) == 3.0

    def test_bad_path(self):
        game = ExplicitTree([[1, 2], [3, 4]])
        with pytest.raises(SearchError):
            follow_path(game, (5,))


class TestLine:
    def test_prepend(self):
        line = Line([2, 3]).prepend(1)
        assert list(line) == [1, 2, 3]
        assert len(line) == 3
