"""Tests for the interprocedural flow analyzer (repro.verify.flow)."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.errors import VerificationError
from repro.verify.flow import (
    RULES,
    analyze_repo,
    analyze_sources,
    load_project,
    repo_root,
)
from repro.verify.flow.baseline import (
    Suppression,
    filter_baselined,
    load_baseline,
    save_baseline,
)
from repro.verify.flow.lockset import Analysis, canonical_token, lock_category
from repro.verify.flow.selftest import EXEMPLAR, MUTATIONS, self_test

FIXTURE = Path(__file__).parent / "fixtures" / "flow" / "on_spec_race.py"


def _src(text: str) -> dict[str, str]:
    return {"mod.py": textwrap.dedent(text)}


# ---------------------------------------------------------------------------
# the repository itself


def test_repo_tree_is_clean() -> None:
    """The gate: zero findings on the committed tree."""
    assert analyze_repo() == []


def test_repo_analysis_is_not_vacuous() -> None:
    """Guard against a silently-empty walk: the engine's shared writes
    and the cache subsystems' lock nesting must actually be observed."""
    analysis = Analysis(load_project(repo_root()))
    analysis.run()
    locations = {w.location for w in analysis.writes}
    assert "on_spec" in locations
    assert "value" in locations
    assert "_Context.counters[pops_primary]" in locations
    assert any("_sim_locks" in h for h, _ in analysis.order_edges)


# ---------------------------------------------------------------------------
# the historical on_spec race (regression fixture)


def test_on_spec_race_fixture_is_detected() -> None:
    source = FIXTURE.read_text()
    findings = analyze_sources({"on_spec_race.py": source})
    ver102 = [f for f in findings if f.rule == "VER102"]
    assert ver102, findings
    # Anchored at the buggy pop_work write, with the inconsistent-guard
    # signature naming the racing field.
    bug_line = next(
        i + 1
        for i, line in enumerate(source.splitlines())
        if "spec.on_spec = False" in line
    )
    anchored = [f for f in ver102 if f.line == bug_line]
    assert anchored, ver102
    assert anchored[0].signature == "inconsistent:on_spec:heap"
    assert anchored[0].function == "_Context.pop_work"


# ---------------------------------------------------------------------------
# mutation self-test corpus


def test_selftest_exemplar_is_clean_and_mutations_die() -> None:
    killed, total = self_test()
    assert total == len(MUTATIONS)
    assert killed == total  # 100%; the committed gate is >= 90%


def test_selftest_covers_every_rule() -> None:
    expected = {m.expected_rule for m in MUTATIONS}
    assert expected == set(RULES)


def test_selftest_exemplar_mutation_anchors_apply() -> None:
    for mutation in MUTATIONS:
        if mutation.target != "exemplar":
            continue
        source = EXEMPLAR
        for old, _new in mutation.replacements:
            assert old in source, mutation.name


# ---------------------------------------------------------------------------
# unit cases per rule


def test_ver101_release_without_acquire() -> None:
    findings = analyze_sources(
        _src(
            """
            def _worker(ctx, stats, pid=0):
                yield Release(ctx.heap_lock)
            """
        )
    )
    assert any(
        f.rule == "VER101" and f.signature == "release-unheld:heap_lock"
        for f in findings
    )


def test_ver101_branch_divergence() -> None:
    findings = analyze_sources(
        _src(
            """
            def _worker(ctx, stats, pid=0):
                if ctx.flag:
                    yield Acquire(ctx.heap_lock)
                yield Compute(1, tag="heap_op")
                yield Release(ctx.heap_lock)
            """
        )
    )
    assert any(f.rule == "VER101" and "divergence" in f.signature for f in findings)


def test_ver101_interprocedural_exit_imbalance() -> None:
    # The helper acquires and never releases; the leak is only visible
    # across the call boundary.
    findings = analyze_sources(
        _src(
            """
            def _grab(ctx):
                yield Acquire(ctx.tree_lock)

            def _worker(ctx, stats, pid=0):
                yield from _grab(ctx)
            """
        )
    )
    assert any(
        f.rule == "VER101" and f.signature == "exit-imbalance:tree_lock"
        for f in findings
    )


def test_ver103_order_cycle_across_functions() -> None:
    findings = analyze_sources(
        _src(
            """
            def _a(ctx):
                yield Acquire(ctx.heap_lock)
                yield Acquire(ctx.tree_lock)
                yield Release(ctx.tree_lock)
                yield Release(ctx.heap_lock)

            def _b(ctx):
                yield Acquire(ctx.tree_lock)
                yield Acquire(ctx.heap_lock)
                yield Release(ctx.heap_lock)
                yield Release(ctx.tree_lock)

            def _worker(ctx, stats, pid=0):
                yield from _a(ctx)
                yield from _b(ctx)
            """
        )
    )
    cycles = [f for f in findings if f.rule == "VER103"]
    assert cycles and "heap_lock" in cycles[0].signature
    assert "tree_lock" in cycles[0].signature


def test_ver105_wait_while_holding() -> None:
    findings = analyze_sources(
        _src(
            """
            def _worker(ctx, stats, pid=0):
                yield Acquire(ctx.heap_lock)
                yield WaitWork(ctx.work, 0)
                yield Release(ctx.heap_lock)
            """
        )
    )
    assert any(f.rule == "VER105" for f in findings)


def test_ver102_shared_write_without_lock() -> None:
    findings = analyze_sources(
        _src(
            """
            def _worker(ctx, stats, pid=0):
                node = ctx.pop()
                node.value = 1
                yield Compute(1, tag="heap_op")
            """
        )
    )
    assert any(
        f.rule == "VER102" and f.signature == "unguarded:value" for f in findings
    )


def test_lock_category_and_canonicalization() -> None:
    assert lock_category("heap_lock") == "heap"
    assert lock_category("local_locks[*]") == "heap"
    assert lock_category("tree_lock") == "tree"
    assert lock_category("SimStripedTT._sim_locks[*]") == "SimStripedTT._sim_locks[*]"
    import ast as _ast

    expr = _ast.parse("ctx.local_locks[pid]", mode="eval").body
    assert canonical_token(expr, None, {}) == "local_locks[*]"
    expr = _ast.parse("self._sim_locks[i]", mode="eval").body
    assert canonical_token(expr, "SimStripedTT", {}) == "SimStripedTT._sim_locks[*]"


# ---------------------------------------------------------------------------
# baseline round-trip


def test_baseline_round_trip_and_filtering(tmp_path: Path) -> None:
    findings = analyze_sources(
        _src(
            """
            def _worker(ctx, stats, pid=0):
                yield Release(ctx.heap_lock)
            """
        )
    )
    assert findings
    target = findings[0]
    path = tmp_path / "baseline.json"
    save_baseline(
        path,
        [Suppression(target.fingerprint(), target.rule, "known quirk; tracked")],
    )
    loaded = load_baseline(path)
    assert [s.fingerprint for s in loaded] == [target.fingerprint()]
    novel, baselined = filter_baselined(findings, loaded)
    assert target in baselined and target not in novel


def test_baseline_rejects_reasonless_entries(tmp_path: Path) -> None:
    path = tmp_path / "baseline.json"
    path.write_text(
        '{"version": 1, "suppressions": [{"fingerprint": "x", "rule": "VER102", "reason": "  "}]}'
    )
    with pytest.raises(ValueError):
        load_baseline(path)


def test_committed_baseline_is_empty() -> None:
    """The committed tree needs no suppressions; keep it that way."""
    baseline = load_baseline(repo_root() / "verify_flow_baseline.json")
    assert baseline == []


def test_fingerprints_are_line_independent() -> None:
    a = analyze_sources(
        _src(
            """
            def _worker(ctx, stats, pid=0):
                yield Release(ctx.heap_lock)
            """
        )
    )
    b = analyze_sources(
        _src(
            """
            # a comment shifting every line number
            def _worker(ctx, stats, pid=0):
                yield Release(ctx.heap_lock)
            """
        )
    )
    assert a[0].line != b[0].line
    assert a[0].fingerprint() == b[0].fingerprint()


def test_selftest_raises_on_broken_exemplar(monkeypatch: pytest.MonkeyPatch) -> None:
    from repro.verify.flow import selftest as st

    monkeypatch.setattr(
        st, "EXEMPLAR", st.EXEMPLAR.replace("yield Release(ctx.heap_lock)", "pass", 1)
    )
    with pytest.raises(VerificationError):
        st.self_test()
