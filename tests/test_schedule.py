"""Unit tests for the fork/join list scheduler."""

import pytest

from repro.errors import SimulationError
from repro.parallel.schedule import ScheduledTask, list_schedule


class StaticSource:
    """Fixed set of independent tasks."""

    def __init__(self, costs):
        self.costs = costs
        self.completed = []

    def initial_tasks(self):
        return [
            ScheduledTask(key=i, cost_fn=lambda c=c: (c, None)) for i, c in enumerate(self.costs)
        ]

    def on_complete(self, task, payload, now):
        self.completed.append((task.key, now))
        return []


class ChainSource:
    """Each completion spawns the next task: a fully serial chain."""

    def __init__(self, length, cost):
        self.length = length
        self.cost = cost
        self.spawned = 0

    def _task(self):
        self.spawned += 1
        return ScheduledTask(key=self.spawned, cost_fn=lambda: (self.cost, None))

    def initial_tasks(self):
        return [self._task()]

    def on_complete(self, task, payload, now):
        if self.spawned < self.length:
            return [self._task()]
        return []


class TestBasics:
    def test_single_processor_sums_costs(self):
        report = list_schedule(1, StaticSource([3.0, 4.0, 5.0]))
        assert report.makespan == 12.0

    def test_two_processors_balance(self):
        report = list_schedule(2, StaticSource([5.0, 5.0]))
        assert report.makespan == 5.0
        assert report.total_busy == 10.0

    def test_more_processors_than_tasks(self):
        report = list_schedule(8, StaticSource([7.0, 2.0]))
        assert report.makespan == 7.0

    def test_chain_never_parallelizes(self):
        report = list_schedule(8, ChainSource(length=5, cost=2.0))
        assert report.makespan == 10.0
        assert report.starvation_fraction() > 0.5

    def test_priority_orders_simultaneous_tasks(self):
        order = []

        class PrioritySource(StaticSource):
            def initial_tasks(self):
                def run(k):
                    return lambda: (1.0, order.append(k))

                return [
                    ScheduledTask(key="low", cost_fn=run("low"), priority=(2,)),
                    ScheduledTask(key="high", cost_fn=run("high"), priority=(1,)),
                ]

        list_schedule(1, PrioritySource([]))
        assert order == ["high", "low"]

    def test_cancelled_tasks_skipped(self):
        class CancelSource(StaticSource):
            def initial_tasks(self):
                tasks = super().initial_tasks()
                tasks[0].cancelled = True
                return tasks

        source = CancelSource([100.0, 1.0])
        report = list_schedule(1, source)
        assert report.makespan == 1.0

    def test_rejects_zero_processors(self):
        with pytest.raises(SimulationError):
            list_schedule(0, StaticSource([1.0]))

    def test_per_processor_accounting(self):
        report = list_schedule(2, StaticSource([4.0, 4.0, 4.0, 4.0]))
        assert [p.busy for p in report.processors] == [8.0, 8.0]
