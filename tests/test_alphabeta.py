"""Unit tests for alpha-beta search (paper Sections 2.1-2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.games.base import NEG_INF, POS_INF, SearchProblem
from repro.games.explicit import ExplicitTree, negmax_of_spec
from repro.games.random_tree import RandomGameTree, SyntheticOrderedTree
from repro.search.alphabeta import alphabeta
from repro.search.minimal_tree import minimal_leaf_count_formula
from repro.search.negamax import negamax

from conftest import explicit_problem

# Strategy for small explicit trees.
leaf = st.integers(min_value=-50, max_value=50)
tree_spec = st.recursive(leaf, lambda child: st.lists(child, min_size=1, max_size=3), max_leaves=25)


class TestAgreementWithNegamax:
    @given(tree_spec)
    def test_open_window_equals_negamax(self, spec):
        problem = explicit_problem(spec)
        assert alphabeta(problem).value == negmax_of_spec(spec)

    @given(tree_spec)
    def test_shallow_variant_equals_negamax(self, spec):
        problem = explicit_problem(spec)
        assert alphabeta(problem, deep_cutoffs=False).value == negmax_of_spec(spec)

    def test_random_trees(self, small_random_problems):
        for problem in small_random_problems:
            truth = negamax(problem).value
            assert alphabeta(problem).value == truth
            assert alphabeta(problem, deep_cutoffs=False).value == truth

    def test_sorted_search_same_value(self):
        import dataclasses

        problem = SearchProblem(RandomGameTree(4, 5, seed=3), depth=5)
        sorted_problem = dataclasses.replace(problem, sort_below_root=5)
        assert alphabeta(sorted_problem).value == alphabeta(problem).value


class TestWindowSemantics:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            alphabeta(explicit_problem([1, 2]), alpha=3, beta=3)

    @given(tree_spec, st.integers(-60, 60), st.integers(1, 40))
    def test_narrow_window_brackets_correctly(self, spec, low, width):
        high = low + width
        truth = negmax_of_spec(spec)
        result = alphabeta(explicit_problem(spec), alpha=low, beta=high)
        if low < truth < high:
            assert result.value == truth
        elif truth <= low:
            assert result.value <= low  # fail low
        else:
            assert result.value >= high  # fail high

    def test_fail_soft_returns_useful_bound(self):
        # True value 5; searching (10, 20) must fail low with value <= 10.
        result = alphabeta(explicit_problem([-5, -3]), alpha=10, beta=20)
        assert result.value <= 10


class TestCutoffs:
    def test_shallow_cutoff_example(self):
        """Figure 2(a): B's subtree is cut after its first child."""
        # A's first child pins A >= 7; B's first child caps B's usefulness
        # (B >= -5 means -B <= 5 < 7), so B's other children are skipped.
        spec = [-7, [5, 999]]
        result = alphabeta(explicit_problem(spec))
        assert result.value == 7.0
        assert result.stats.cutoffs >= 1
        # The poison leaf 999 must not have been evaluated.
        assert result.stats.leaf_evals == 2

    def test_deep_cutoff_requires_deep_variant(self):
        """Deep cutoffs only happen when ancestor bounds propagate."""
        problem = SearchProblem(RandomGameTree(3, 6, seed=11), depth=6)
        deep = alphabeta(problem)
        shallow = alphabeta(problem, deep_cutoffs=False)
        assert deep.value == shallow.value
        # Deep cutoffs can only remove work (Baudet: a second-order effect).
        assert deep.stats.leaf_evals <= shallow.stats.leaf_evals

    def test_best_first_tree_searches_minimal_tree(self):
        for degree, height in ((3, 4), (4, 5), (2, 8)):
            tree = SyntheticOrderedTree(degree, height, seed=0)
            result = alphabeta(SearchProblem(tree, depth=height))
            assert result.stats.leaf_evals == minimal_leaf_count_formula(degree, height)

    def test_pruning_beats_negamax(self):
        problem = SearchProblem(RandomGameTree(4, 6, seed=2), depth=6)
        ab = alphabeta(problem)
        nm = negamax(problem)
        assert ab.stats.leaf_evals < nm.stats.leaf_evals
        assert ab.value == nm.value


class TestOrderingCharges:
    def test_sorting_charges_evaluator_applications(self):
        problem = SearchProblem(RandomGameTree(4, 3, seed=1), depth=3, sort_below_root=2)
        result = alphabeta(problem)
        assert result.stats.ordering_evals > 0
        unsorted = alphabeta(SearchProblem(RandomGameTree(4, 3, seed=1), depth=3))
        assert unsorted.stats.ordering_evals == 0

    def test_pv_reported(self):
        spec = [[9, 1], [7, 3]]
        result = alphabeta(explicit_problem(spec))
        assert len(result.pv) >= 1
