"""The eval cache must never perturb simulated determinism.

A shared :class:`~repro.eval.SimStripedEvalCache` sits on the hot path of
every simulated leaf, so any hidden ordering dependence (dict iteration,
id()-keyed state, wall-clock) would show up here first.  The regression
pin is byte-level: a fixed-seed run's full telemetry stream, rendered as
JSONL, against a golden file per eval mode — plus run-to-run byte
equality from fresh caches, and value equality across all modes.

Regenerate the goldens after an intentional engine change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_eval_determinism.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.er_parallel import ERConfig, parallel_er
from repro.eval import make_eval_cache
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree
from repro.obs import observing
from repro.obs.export import render_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Same fixed-seed workload shape as the sim-trace golden in test_obs.py.
_SEED = 7


def _problem() -> SearchProblem:
    return SearchProblem(RandomGameTree(3, 5, seed=_SEED), depth=5)


def _run(mode: str) -> tuple[str, float]:
    """One observed fixed-seed run from a fresh cache; returns (jsonl, value)."""
    with observing() as bus:
        result = parallel_er(
            _problem(),
            2,
            config=ERConfig(serial_depth=2),
            eval_cache=make_eval_cache(mode),
            batch_eval=True,
        )
    return render_jsonl(bus.events), result.value


MODES = ("off", "private", "shared")


class TestEvalDeterminism:
    @pytest.mark.parametrize("mode", MODES)
    def test_run_to_run_byte_identical(self, mode):
        assert _run(mode) == _run(mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_trace_matches_golden_bytes(self, mode):
        golden = GOLDEN_DIR / f"eval_trace_{mode}.jsonl"
        text, _value = _run(mode)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            golden.parent.mkdir(parents=True, exist_ok=True)
            golden.write_text(text, encoding="utf-8")
        assert golden.exists(), (
            f"golden eval trace for mode {mode!r} missing; regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )
        assert text == golden.read_text(encoding="utf-8"), (
            f"fixed-seed eval trace (mode {mode!r}) changed; if intentional, "
            "regenerate with REPRO_REGEN_GOLDEN=1"
        )

    def test_value_equal_across_modes(self):
        baseline = parallel_er(_problem(), 2, config=ERConfig(serial_depth=2)).value
        values = {mode: _run(mode)[1] for mode in MODES}
        assert all(value == baseline for value in values.values()), values

    def test_cache_off_stream_matches_no_eval_stream(self):
        """batch_eval changes cost/timing, but the *default* path is untouched:
        a run with the whole subsystem off is byte-identical to one that never
        imported it (same golden the obs suite pins)."""
        with observing() as bus_a:
            parallel_er(_problem(), 2, config=ERConfig(serial_depth=2))
        with observing() as bus_b:
            parallel_er(
                _problem(), 2, config=ERConfig(serial_depth=2),
                eval_cache=None, batch_eval=False,
            )
        assert render_jsonl(bus_a.events) == render_jsonl(bus_b.events)
