"""Stress tests for the threaded ER driver.

The ordinary threaded tests run a handful of threads at the default wait
slice; races that need a tight interleaving window rarely fire there.
These tests crank both knobs — thread counts well above the core count
and a wait slice shrunk two orders of magnitude (so workers re-check the
heap almost continuously, maximizing pop/push overlap) — across many
seeds.  A protocol race shows up as a wrong root value, a double-combine
assertion, or a hang (caught by ``threaded_er``'s own timeout).
"""

import pytest

import repro.parallel.threaded as threaded_module
from repro.core.er_parallel import ERConfig
from repro.games.base import SearchProblem
from repro.games.connect4 import ConnectFour
from repro.parallel.threaded import threaded_er
from repro.search.negamax import negamax

from conftest import random_problem


@pytest.fixture
def tiny_wait_slice(monkeypatch):
    monkeypatch.setattr(threaded_module, "_WAIT_SLICE_SECONDS", 0.00005)


@pytest.mark.slow
class TestThreadedStress:
    @pytest.mark.parametrize("n_threads", [8, 16, 32])
    def test_oversubscribed_random_trees(self, tiny_wait_slice, n_threads):
        for seed in range(6):
            problem = random_problem(2, 5, seed)
            truth = negamax(problem).value
            value, stats = threaded_er(
                problem, n_threads, config=ERConfig(serial_depth=3), timeout=60.0
            )
            assert value == truth, f"seed={seed} n_threads={n_threads}"
            assert stats.nodes_generated > 0

    def test_wide_trees_all_speculation_on(self, tiny_wait_slice):
        """Wide trees put many siblings in the speculative queue at once —
        the worst case for concurrent select/promote."""
        config = ERConfig(serial_depth=2, max_e_children=4)
        for seed in range(4):
            problem = random_problem(5, 3, seed)
            truth = negamax(problem).value
            value, _ = threaded_er(problem, 16, config=config, timeout=60.0)
            assert value == truth, f"seed={seed}"

    def test_no_cutover_contends_on_every_node(self, tiny_wait_slice):
        """serial_depth beyond the horizon keeps every node on the shared
        heap, so every expansion races every other through the locks."""
        for seed in range(4):
            problem = random_problem(3, 4, seed)
            truth = negamax(problem).value
            value, _ = threaded_er(problem, 12, timeout=60.0)
            assert value == truth, f"seed={seed}"

    def test_real_game_repeated(self, tiny_wait_slice):
        problem = SearchProblem(ConnectFour(5, 4), depth=4)
        truth = negamax(problem).value
        for _ in range(3):
            value, _ = threaded_er(
                problem, 16, config=ERConfig(serial_depth=2), timeout=60.0
            )
            assert value == truth
