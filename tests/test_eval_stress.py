"""Stress test for the striped evaluation cache under real threads.

Mirrors ``test_tt_stress.py``: many threads hammer one
:class:`~repro.eval.StripedEvalCache` with mixed probes and stores over a
deliberately overlapping key range, all under the race detector's trace
recorder.  Per-stripe locking shows up in the trace as
ACQUIRE/WRITE/RELEASE triples named ``eval-stripe-{i}``; the offline
analysis must find them consistently locked (no data races, no lock
order edges — eval stripes are leaves and never nest).  Counter totals
are cross-checked against the exact number of operations issued
(``hits + misses == probes``), which a torn read-modify-write on the
shared tallies would break.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.eval import StripedEvalCache
from repro.verify import trace as _trace
from repro.verify.racedetect import analyze

N_THREADS = 8
OPS_PER_THREAD = 2000
KEY_SPACE = 512  # far smaller than ops: every key is contended


def _hammer(
    cache: StripedEvalCache, seed: int, barrier: threading.Barrier, issued: list[list[int]]
) -> None:
    rng = random.Random(seed)
    probes = stores = 0
    barrier.wait()  # maximal overlap: everyone starts at once
    for _ in range(OPS_PER_THREAD):
        key = rng.randrange(KEY_SPACE)
        if rng.random() < 0.5:
            cache.probe(key)
            probes += 1
        else:
            cache.store(key, float(seed))
            stores += 1
    issued[seed] = [probes, stores]


@pytest.mark.slow
class TestStripedEvalCacheStress:
    def test_eight_threads_trace_is_clean(self) -> None:
        cache = StripedEvalCache(capacity=KEY_SPACE // 2, n_stripes=8)
        barrier = threading.Barrier(N_THREADS)
        issued: list[list[int]] = [[0, 0] for _ in range(N_THREADS)]
        with _trace.tracing() as recorder:
            threads = [
                threading.Thread(target=_hammer, args=(cache, seed, barrier, issued))
                for seed in range(N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        report = analyze(recorder.events)
        assert report.ok, report.summary()
        assert report.tasks == N_THREADS
        # Every cache operation is one locked critical section.
        acquires = sum(1 for ev in recorder.events if ev.kind == _trace.ACQUIRE)
        assert acquires == N_THREADS * OPS_PER_THREAD

        # Counter conservation: a torn increment on the per-stripe hit
        # and miss tallies would make their sum fall short of the probes
        # issued.  Unlike the TT, every eval store lands (static values
        # carry no depth preference), so stores are conserved too.
        probes_issued = sum(counts[0] for counts in issued)
        stores_issued = sum(counts[1] for counts in issued)
        assert probes_issued + stores_issued == N_THREADS * OPS_PER_THREAD
        assert cache.hits + cache.misses == probes_issued
        assert cache.stores == stores_issued
        assert cache.hits > 0 and cache.misses > 0
        assert len(cache) <= cache.capacity

    def test_contended_cache_holds_only_stored_values(self) -> None:
        """Every probe-able value after the hammer is one some thread
        actually stored — a torn float write or cross-stripe aliasing
        would surface as a foreign value."""
        cache = StripedEvalCache(capacity=KEY_SPACE, n_stripes=4)
        barrier = threading.Barrier(N_THREADS)
        issued: list[list[int]] = [[0, 0] for _ in range(N_THREADS)]
        threads = [
            threading.Thread(target=_hammer, args=(cache, seed, barrier, issued))
            for seed in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stored_values = {float(seed) for seed in range(N_THREADS)}
        for key in range(KEY_SPACE):
            value = cache.probe(key)
            if value is not None:
                assert value in stored_values
