"""Property battery for the service request scheduler, engine faked out.

The scheduler's contract (exactly-once resolution, priority-aware
shedding with FIFO fairness inside a class, anytime deadlines honored
within one deepening iteration, drain-without-drops) is pinned here
with Hypothesis driving randomized request batches against a fake
deterministic engine and an injected clock — no worker processes, no
wall-clock flakiness.  One battery also runs under the repo's race
detector, covering the ServeMetrics lock discipline the Prometheus
scrape thread relies on.
"""

from __future__ import annotations

import asyncio
from typing import Optional

import pytest
from hypothesis import given, strategies as st

from repro.serve.api import (
    PRIORITIES,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    STATUS_OK,
    STATUS_SHED,
    SearchRequest,
)
from repro.serve.scheduler import IterationResult, RequestScheduler
from repro.verify import trace as _trace
from repro.verify.racedetect import analyze

ITERATION_COST = 1.0


class FakeClock:
    """Deterministic monotonic clock the fake engine advances."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FakeEngine:
    """Costs ``ITERATION_COST`` clock units per iteration; logs the order."""

    def __init__(self, clock: FakeClock) -> None:
        self.clock = clock
        self.started: list[str] = []  # request_id at first-iteration start
        self.iterations = 0

    async def run_iteration(self, request: SearchRequest, depth: int) -> IterationResult:
        if depth == 1:
            self.started.append(request.request_id)
        self.iterations += 1
        self.clock.advance(ITERATION_COST)
        await asyncio.sleep(0)  # real suspension point, like a pool await
        return IterationResult(
            move_index=0, value=float(depth), per_move_values=(float(depth),)
        )


def make_request(
    index: int,
    priority: int,
    max_depth: int = 2,
    deadline_s: Optional[float] = None,
) -> SearchRequest:
    return SearchRequest(
        request_id=f"r{index:04d}",
        workload="fake",
        max_depth=max_depth,
        deadline_s=deadline_s,
        priority=priority,
    )


request_batches = st.lists(
    st.tuples(
        st.sampled_from(PRIORITIES),
        st.integers(min_value=1, max_value=4),
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=6.0)),
    ),
    min_size=1,
    max_size=25,
)


def run_batch(
    batch: list[tuple[int, int, Optional[float]]],
    *,
    max_concurrency: int = 2,
    queue_limit: int = 4,
) -> tuple[RequestScheduler, FakeEngine, list]:
    """Submit a whole batch at once, drain, return every reply."""
    clock = FakeClock()
    engine = FakeEngine(clock)
    scheduler = RequestScheduler(
        engine,
        max_concurrency=max_concurrency,
        queue_limit=queue_limit,
        clock=clock,
    )

    async def scenario() -> list:
        futures = [
            scheduler.submit_nowait(make_request(i, prio, depth, deadline))
            for i, (prio, depth, deadline) in enumerate(batch)
        ]
        await scheduler.drain()
        return [await f for f in futures]

    replies = asyncio.run(scenario())
    return scheduler, engine, replies


@given(request_batches)
def test_exactly_once_resolution(batch) -> None:
    """Every submission resolves exactly once and the books balance."""
    scheduler, _, replies = run_batch(batch)
    assert len(replies) == len(batch)
    assert [r.request_id for r in replies] == [f"r{i:04d}" for i in range(len(batch))]
    for reply in replies:
        assert reply.status in (STATUS_OK, STATUS_SHED)
    assert scheduler.conservation_problems() == []
    assert scheduler.in_flight == 0
    counters = scheduler.counters
    assert counters["submitted"] == len(batch)
    assert counters["completed"] == sum(1 for r in replies if r.status == STATUS_OK)
    assert counters["shed"] == sum(1 for r in replies if r.status == STATUS_SHED)


@given(request_batches)
def test_deadline_within_one_iteration(batch) -> None:
    """An expired deadline stops deepening within one iteration's cost.

    The gate runs after every completed iteration, so the last
    iteration must have *started* before the deadline: total latency is
    strictly below deadline + one iteration.  The first iteration
    always runs — an admitted request is never answered without a move.
    """
    scheduler, _, replies = run_batch(batch, max_concurrency=1)
    for reply, (_, max_depth, deadline) in zip(replies, batch):
        if reply.status != STATUS_OK:
            continue
        assert reply.depth_reached >= 1
        assert reply.move_index == 0
        if reply.anytime:
            assert deadline is not None
            assert reply.depth_reached < max_depth
            # Either the gate stopped us within one iteration of the
            # deadline, or the deadline was already gone when we left
            # the queue and only the mandatory first iteration ran.
            bound = max(deadline, reply.queue_wait_s) + ITERATION_COST
            assert reply.latency_s <= bound + 1e-9
            if reply.queue_wait_s + ITERATION_COST < deadline:
                assert reply.depth_reached > 1
        else:
            assert reply.depth_reached == max_depth
    assert scheduler.conservation_problems() == []


@given(request_batches)
def test_fifo_within_priority_class(batch) -> None:
    """Requests of equal priority start in submission order."""
    _, engine, replies = run_batch(batch, max_concurrency=1)
    ran = {r.request_id for r in replies if r.status == STATUS_OK}
    for priority in PRIORITIES:
        ids_of_class = [
            f"r{i:04d}"
            for i, (prio, _, _) in enumerate(batch)
            if prio == priority and f"r{i:04d}" in ran
        ]
        started_of_class = [rid for rid in engine.started if rid in set(ids_of_class)]
        assert started_of_class == sorted(started_of_class), (
            f"priority {priority} executed out of FIFO order: {started_of_class}"
        )


@given(request_batches)
def test_drain_completes_every_admitted_request(batch) -> None:
    """Drain never drops admitted work; post-drain arrivals shed."""
    clock = FakeClock()
    engine = FakeEngine(clock)
    scheduler = RequestScheduler(
        engine, max_concurrency=2, queue_limit=len(batch) + 1, clock=clock
    )

    async def scenario():
        futures = [
            scheduler.submit_nowait(make_request(i, prio, depth, deadline))
            for i, (prio, depth, deadline) in enumerate(batch)
        ]
        await scheduler.drain()
        late = await scheduler.submit(make_request(9999, PRIORITY_HIGH))
        return [await f for f in futures], late

    replies, late = asyncio.run(scenario())
    # Queue limit exceeds the batch: everything was admitted, so drain
    # must complete it all — no shedding of admitted work.
    assert all(r.status == STATUS_OK for r in replies)
    assert scheduler.counters["admitted"] == len(batch)
    assert late.status == STATUS_SHED and late.detail == "shutdown"
    assert scheduler.conservation_problems() == []


def test_overload_sheds_lowest_class_newest_first() -> None:
    """Eviction picks the newest waiter of the lowest outranked class."""
    clock = FakeClock()
    engine = FakeEngine(clock)
    scheduler = RequestScheduler(
        engine, max_concurrency=1, queue_limit=2, clock=clock
    )

    async def scenario():
        # One running (r0), two queued low-priority (r1, r2) fill the queue.
        futures = [
            scheduler.submit_nowait(make_request(i, PRIORITY_LOW)) for i in range(3)
        ]
        # A low arrival cannot evict its own class: rejected outright.
        rejected = scheduler.submit_nowait(make_request(3, PRIORITY_LOW))
        # A high arrival evicts the NEWEST queued low request (r2), not r1.
        futures.append(scheduler.submit_nowait(make_request(4, PRIORITY_HIGH)))
        await scheduler.drain()
        return [await f for f in futures], await rejected

    replies, rejected = asyncio.run(scenario())
    by_id = {r.request_id: r for r in replies}
    assert rejected.status == STATUS_SHED and rejected.detail == "rejected"
    assert by_id["r0002"].status == STATUS_SHED and by_id["r0002"].detail == "evicted"
    assert by_id["r0001"].status == STATUS_OK, "older waiter must survive eviction"
    assert by_id["r0004"].status == STATUS_OK
    assert scheduler.counters["evicted"] == 1
    assert scheduler.counters["rejected"] == 1
    assert scheduler.conservation_problems() == []


def test_queue_limit_zero_still_runs_when_slots_free() -> None:
    """queue_limit=0 means no waiting room, not no service."""
    clock = FakeClock()
    engine = FakeEngine(clock)
    scheduler = RequestScheduler(
        engine, max_concurrency=2, queue_limit=0, clock=clock
    )

    async def scenario():
        first = scheduler.submit_nowait(make_request(0, PRIORITY_LOW))
        await scheduler.drain()
        return await first

    reply = asyncio.run(scenario())
    assert reply.status == STATUS_OK


def test_scheduler_metrics_trace_is_race_clean() -> None:
    """The ServeMetrics lock discipline passes the race detector."""
    with _trace.tracing() as recorder:
        scheduler, _, replies = run_batch(
            [(PRIORITY_LOW, 2, None), (PRIORITY_HIGH, 3, 1.5), (PRIORITY_LOW, 1, None)] * 4,
            max_concurrency=2,
            queue_limit=3,
        )
    assert scheduler.conservation_problems() == []
    report = analyze(recorder.events)
    assert report.ok, report.summary()
    # Every metrics access happened under the serve-metrics lock.
    accesses = [ev for ev in recorder.events if ev.kind in (_trace.READ, _trace.WRITE)]
    assert accesses, "expected instrumented metric accesses"
    acquires = sum(1 for ev in recorder.events if ev.kind == _trace.ACQUIRE)
    assert acquires >= len(replies)


def test_counters_mirror_metrics_registry() -> None:
    """The registry's serve.* counters agree with the plain dict."""
    scheduler, _, _ = run_batch([(PRIORITY_LOW, 2, None)] * 6)
    collected = scheduler.metrics.collect()
    for name, count in scheduler.counters.items():
        if count:
            assert collected[f"serve.requests.{name}"] == pytest.approx(float(count))