"""Cross-backend differential parity harness.

Every execution substrate must report the same root value for the same
problem: serial ER, parallel ER on the discrete-event simulator, the
threaded driver, and the multiprocess backend, with serial alpha-beta as
the independent oracle.  The grid below sweeps seeds, game families,
depths, and processor counts — well over fifty combinations — so a
divergence in any backend's window, combine, or cutoff logic shows up as
a value mismatch tagged with the exact combination that produced it.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.er_parallel import ERConfig, parallel_er
from repro.core.serial_er import er_search
from repro.engine import EngineConfig, GameEngine
from repro.games.base import SearchProblem
from repro.games.connect4 import ConnectFour
from repro.games.explicit import FIGURE6, FIGURE7, ExplicitTree
from repro.games.nim import Nim
from repro.games.othello.game import O1_ROOT, O2_ROOT, Othello
from repro.games.random_tree import (
    IncrementalGameTree,
    RandomGameTree,
    SyntheticOrderedTree,
)
from repro.games.tictactoe import TicTacToe
from repro.parallel.multiproc import multiproc_er, preferred_start_method
from repro.parallel.threaded import threaded_er
from repro.search.alphabeta import alphabeta

# Small hand-built trees beyond the paper's two figures: a ragged tree,
# a tree whose best move is last, and one with repeated values (tie
# handling must not depend on the backend).
RAGGED = [[3.0, [1.0, -4.0]], [-2.0], [[5.0, 0.0], 2.0, -1.0]]
BEST_LAST = [[9.0, 8.0], [7.0, 6.0], [1.0, -9.0]]
ALL_TIES = [[4.0, 4.0], [4.0, 4.0]]


def _cases() -> list:
    """(id, problem factory) for every grid point."""
    cases = []

    def add(name, factory):
        cases.append(pytest.param(factory, id=name))

    for degree, height in ((2, 4), (2, 5), (2, 6), (3, 3), (3, 4), (4, 3)):
        for seed in (0, 1, 2, 3):
            add(
                f"rand-d{degree}h{height}s{seed}",
                lambda d=degree, h=height, s=seed: SearchProblem(
                    RandomGameTree(d, h, seed=s), depth=h
                ),
            )
    for seed in (0, 1):
        add(
            f"rand-d5h3s{seed}",
            lambda s=seed: SearchProblem(RandomGameTree(5, 3, seed=s), depth=3),
        )
    for degree, height in ((3, 3), (3, 4)):
        for seed in (0, 1):
            add(
                f"incr-d{degree}h{height}s{seed}",
                lambda d=degree, h=height, s=seed: SearchProblem(
                    IncrementalGameTree(d, h, seed=s, noise=0.4), depth=h
                ),
            )
    for seed in (0, 1, 2):
        add(
            f"synth-s{seed}",
            lambda s=seed: SearchProblem(SyntheticOrderedTree(3, 4, seed=s), depth=4),
        )
    for name, spec in (
        ("fig6", FIGURE6),
        ("fig7", FIGURE7),
        ("ragged", RAGGED),
        ("best-last", BEST_LAST),
        ("ties", ALL_TIES),
    ):
        add(
            f"explicit-{name}",
            lambda sp=spec: SearchProblem(
                ExplicitTree(sp), depth=ExplicitTree(sp).height
            ),
        )
    for depth in (2, 3, 4):
        add(
            f"tictactoe-d{depth}",
            lambda d=depth: SearchProblem(TicTacToe(), depth=d),
        )
    for cols, rows, depth in ((4, 4, 3), (5, 4, 3), (5, 4, 4)):
        add(
            f"connect4-{cols}x{rows}d{depth}",
            lambda c=cols, r=rows, d=depth: SearchProblem(ConnectFour(c, r), depth=d),
        )
    for heaps, depth in (((2, 3), 3), ((3, 4), 4), ((1, 2, 3), 5)):
        add(
            f"nim-{'_'.join(map(str, heaps))}d{depth}",
            lambda h=heaps, d=depth: SearchProblem(Nim(h), depth=d),
        )
    for name, root, depth in (("O1", O1_ROOT, 2), ("O2", O2_ROOT, 2), ("O1", O1_ROOT, 3)):
        add(
            f"othello-{name}d{depth}",
            lambda r=root, d=depth: SearchProblem(
                Othello(r), depth=d, sort_below_root=1
            ),
        )
    return cases


CASES = _cases()
assert len(CASES) >= 50, f"parity grid shrank to {len(CASES)} combos"


@pytest.fixture(scope="module")
def pool():
    context = multiprocessing.get_context(preferred_start_method())
    executor = ProcessPoolExecutor(max_workers=3, mp_context=context)
    yield executor
    executor.shutdown(wait=True, cancel_futures=True)


@pytest.mark.parametrize("make_problem", CASES)
def test_all_backends_agree(make_problem, pool):
    problem = make_problem()
    # Vary processor count and cutover with the problem so the grid also
    # sweeps the protocol configuration, deterministically per case.
    knob = (problem.depth + len(type(problem.game).__name__)) % 3
    n = 1 + knob
    config = ERConfig(serial_depth=max(1, problem.depth - 2 - knob % 2))

    oracle = alphabeta(problem).value
    assert er_search(problem).value == oracle, "serial ER diverged"
    assert parallel_er(problem, n, config=config).value == oracle, (
        f"simulated parallel ER diverged (P={n}, {config.serial_depth=})"
    )
    threaded_value, _ = threaded_er(problem, n, config=config)
    assert threaded_value == oracle, (
        f"threaded ER diverged (P={n}, {config.serial_depth=})"
    )
    mp_result = multiproc_er(problem, n, config=config, executor=pool)
    assert mp_result.value == oracle, (
        f"multiproc ER diverged (P={n}, {config.serial_depth=})"
    )


@pytest.mark.parametrize(
    "game, depth",
    [
        (ConnectFour(4, 4), 3),
        (TicTacToe(), 3),
        (Nim((2, 3)), 3),
        (ExplicitTree(BEST_LAST), 2),
    ],
    ids=["connect4", "tictactoe", "nim", "explicit"],
)
def test_engines_choose_the_same_move(game, depth):
    """Best-move agreement: exact values imply identical argmax and
    identical tie-breaks, so engine decisions must match across backends."""
    choices = [
        GameEngine(
            game,
            EngineConfig(algorithm=algorithm, n_processors=2, max_depth=depth),
        ).choose(game.root())
        for algorithm in ("alphabeta", "er", "parallel-er", "multiproc-er")
    ]
    reference = choices[0]
    for choice in choices[1:]:
        assert choice.move_index == reference.move_index
        assert choice.per_move_values == reference.per_move_values
