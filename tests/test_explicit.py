"""Tests for the explicit hand-built tree game."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GameError
from repro.games.explicit import FIGURE6, FIGURE7, ExplicitTree, negmax_of_spec

leaf = st.integers(min_value=-20, max_value=20)
tree_spec = st.recursive(leaf, lambda c: st.lists(c, min_size=1, max_size=3), max_leaves=15)


class TestConstruction:
    def test_single_leaf(self):
        game = ExplicitTree(5)
        assert game.children(game.root()) == ()
        assert game.evaluate(game.root()) == 5.0
        assert game.height == 0

    def test_nested(self):
        game = ExplicitTree([[1, 2], 3])
        assert game.height == 2
        assert len(game.children(())) == 2
        assert game.children((0,)) == ((0, 0), (0, 1))
        assert game.children((1,)) == ()

    def test_rejects_empty_interior(self):
        with pytest.raises(GameError):
            ExplicitTree([1, []])

    def test_rejects_non_numeric(self):
        with pytest.raises(GameError):
            ExplicitTree([1, "x"])

    def test_descending_through_leaf_raises(self):
        game = ExplicitTree([1, 2])
        with pytest.raises(GameError):
            game.children((0, 0))


class TestEvaluation:
    def test_leaf_values(self):
        game = ExplicitTree([7, [2, 3]])
        assert game.evaluate((0,)) == 7.0
        assert game.evaluate((1, 1)) == 3.0

    def test_perfect_interior_evaluator(self):
        game = ExplicitTree([[4, 6], [1, 9]])
        assert game.evaluate((0,)) == negmax_of_spec([4, 6])

    def test_imperfect_interior_evaluator(self):
        game = ExplicitTree([[4, 6], [1, 9]], perfect_interior_evaluator=False)
        assert game.evaluate((0,)) == 0.0
        assert game.evaluate((0, 1)) == 6.0  # leaves keep their values


class TestNegmaxOfSpec:
    def test_leaf(self):
        assert negmax_of_spec(4) == 4.0

    def test_one_level(self):
        assert negmax_of_spec([3, -1, 2]) == 1.0

    @given(tree_spec)
    def test_matches_manual_recursion(self, spec):
        def manual(node):
            if isinstance(node, (int, float)):
                return float(node)
            return max(-manual(child) for child in node)

        assert negmax_of_spec(spec) == manual(spec)


class TestPaperFigures:
    def test_figure6_value(self):
        """Figure 6: the root's value is 9, determined by E."""
        assert negmax_of_spec(FIGURE6) == 9.0

    def test_figure6_prunes_m(self):
        """Refuting K requires only L; the M subtree is never examined."""
        from repro.search.alphabeta import alphabeta
        from conftest import explicit_problem

        result = alphabeta(explicit_problem(FIGURE6))
        assert result.value == 9.0
        # Leaves examined: E's three plus L — never M's poison leaves.
        assert result.stats.leaf_evals == 4

    def test_figure7_structure(self):
        game = ExplicitTree(FIGURE7)
        assert game.height == 3
        assert len(game.children(())) == 3
