"""Differential battery for the transposition-table subsystem.

Every backend (serial, simulated, threaded, multiprocess) is run in every
table mode (off / private / shared) over a grid of problems — random
trees, a synthetic ordered tree, and real games with genuine
transpositions (Connect Four, Othello) — and every root value must equal
the alpha-beta oracle's.  This is what makes the TT integration safe to
evolve: any unsound probe gate, store classification, or cross-process
keying bug lands here as a value mismatch.

Two more properties are pinned beyond value equality:

* **warm-table savings** — re-running with the same shared table answers
  whole subtrees from cache, so nodes examined must strictly drop while
  the value stays put (the mechanism behind ``speedup --tt shared``);
* **determinism** — identical run sequences from fresh tables produce
  identical node counts and hit counters, seed for seed.
"""

import pytest

from repro.cache import SimStripedTT, WorkerLocalTT, make_tt
from repro.core.er_parallel import parallel_er
from repro.core.serial_er import er_search
from repro.games.base import SearchProblem
from repro.games.connect4 import ConnectFour
from repro.games.othello import Othello
from repro.games.random_tree import RandomGameTree, SyntheticOrderedTree
from repro.parallel.multiproc import multiproc_er
from repro.parallel.threaded import threaded_er
from repro.search.alphabeta import alphabeta
from repro.search.transposition import TranspositionTable

TT_MODES = ("off", "private", "shared")


def battery_problems() -> list[tuple[str, SearchProblem]]:
    problems: list[tuple[str, SearchProblem]] = [
        (f"random-{seed}", SearchProblem(RandomGameTree(3, 5, seed=seed), depth=5))
        for seed in range(4)
    ]
    problems.append(
        ("ordered", SearchProblem(SyntheticOrderedTree(4, 5, seed=9), depth=5))
    )
    # Real games: genuine within-search transpositions (move permutations
    # reaching one board), so private/shared tables get real hits.
    problems.append(
        ("connect4", SearchProblem(ConnectFour(width=5, height=4), depth=4))
    )
    problems.append(("othello", SearchProblem(Othello(), depth=3)))
    return problems


BATTERY = battery_problems()
IDS = [name for name, _ in BATTERY]


def oracle(problem: SearchProblem) -> float:
    return alphabeta(problem).value


class TestSerialDifferential:
    """er_search against the oracle, with every table shape it accepts."""

    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_plain_table(self, name, problem):
        truth = oracle(problem)
        table = TranspositionTable(capacity=4096)
        assert er_search(problem, table=table).value == truth
        # Second search over the now-warm table: same value, fewer nodes.
        from repro.search.stats import SearchStats

        cold = er_search(problem).stats.nodes_examined
        warm_stats = SearchStats()
        assert er_search(problem, stats=warm_stats, table=table).value == truth
        assert warm_stats.nodes_examined < cold

    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_concurrent_tables(self, name, problem):
        truth = oracle(problem)
        assert er_search(problem, table=SimStripedTT(4096)).value == truth
        assert er_search(problem, table=WorkerLocalTT(4096).view(0)).value == truth


class TestSimDifferential:
    @pytest.mark.parametrize("mode", TT_MODES)
    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_every_mode_matches_oracle(self, name, problem, mode):
        truth = oracle(problem)
        tt = make_tt(mode)
        for n in (1, 2, 4):
            assert parallel_er(problem, n, tt=tt).value == truth

    def test_warm_shared_table_reduces_nodes(self):
        problem = SearchProblem(RandomGameTree(4, 6, seed=11), depth=6)
        truth = oracle(problem)
        tt = make_tt("shared")
        cold = parallel_er(problem, 2, tt=tt)
        warm = parallel_er(problem, 2, tt=tt)
        assert cold.value == truth and warm.value == truth
        assert warm.stats.nodes_examined < cold.stats.nodes_examined
        assert tt is not None and tt.hits > 0

    def test_deterministic_from_fresh_tables(self):
        problem = SearchProblem(RandomGameTree(3, 5, seed=7), depth=5)

        def sweep() -> tuple[tuple[int, float], ...]:
            tt = make_tt("shared")
            outcomes = []
            for n in (1, 2, 4):
                result = parallel_er(problem, n, tt=tt)
                outcomes.append((result.stats.nodes_examined, result.value))
            assert tt is not None
            outcomes.append((tt.hits, float(tt.stores)))
            return tuple(outcomes)

        assert sweep() == sweep()

    def test_extras_carry_table_counters(self):
        problem = SearchProblem(RandomGameTree(3, 4, seed=2), depth=4)
        result = parallel_er(problem, 2, tt=make_tt("shared"))
        for key in ("tt_hits", "tt_misses", "tt_stores", "tt_evictions", "tt_contended"):
            assert key in result.extras
        assert result.stats.tt_probes > 0


class TestThreadedDifferential:
    @pytest.mark.parametrize("mode", TT_MODES)
    @pytest.mark.parametrize(
        "name,problem",
        [BATTERY[0], BATTERY[4], BATTERY[5]],
        ids=[IDS[0], IDS[4], IDS[5]],
    )
    def test_every_mode_matches_oracle(self, name, problem, mode):
        truth = oracle(problem)
        tt = make_tt(mode)
        for n in (1, 2, 4):
            value, _stats = threaded_er(problem, n, tt=tt)
            assert value == truth


class TestMultiprocDifferential:
    @pytest.mark.parametrize("mode", TT_MODES)
    def test_every_mode_matches_oracle(self, mode):
        problem = SearchProblem(RandomGameTree(4, 5, seed=13), depth=5)
        truth = oracle(problem)
        result = multiproc_er(problem, 2, tt_mode=mode)
        assert result.value == truth
        if mode != "off":
            assert result.stats.tt_probes > 0

    def test_shared_mode_rejects_foreign_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.errors import SearchError

        problem = SearchProblem(RandomGameTree(3, 4, seed=1), depth=4)
        with ProcessPoolExecutor(max_workers=1) as pool:
            with pytest.raises(SearchError):
                multiproc_er(problem, 1, executor=pool, tt_mode="shared")
