"""Unit tests for serial aspiration search."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search.aspiration import aspiration_search
from repro.games.explicit import negmax_of_spec
from repro.search.alphabeta import alphabeta

from conftest import explicit_problem, random_problem

leaf = st.integers(min_value=-50, max_value=50)
tree_spec = st.recursive(leaf, lambda child: st.lists(child, min_size=1, max_size=3), max_leaves=20)


class TestCorrectness:
    @given(tree_spec, st.integers(-80, 80), st.integers(1, 30))
    def test_always_finds_true_value(self, spec, guess, delta):
        outcome = aspiration_search(explicit_problem(spec), guess=guess, delta=delta)
        assert outcome.result.value == negmax_of_spec(spec)

    def test_random_tree_with_awful_guess(self):
        problem = random_problem(3, 5, seed=4)
        truth = alphabeta(problem).value
        outcome = aspiration_search(problem, guess=truth + 100_000, delta=10)
        assert outcome.result.value == truth
        assert outcome.researches >= 1

    def test_good_guess_avoids_research(self):
        problem = random_problem(3, 5, seed=4)
        truth = alphabeta(problem).value
        outcome = aspiration_search(problem, guess=truth, delta=50)
        assert outcome.researches == 0

    def test_good_guess_prunes_more(self):
        problem = random_problem(4, 6, seed=8)
        full = alphabeta(problem)
        narrow = aspiration_search(problem, guess=full.value, delta=5)
        assert narrow.result.stats.cost < full.stats.cost


class TestValidation:
    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            aspiration_search(explicit_problem([1, 2]), guess=0, delta=0)
