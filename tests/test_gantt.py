"""Tests for timeline recording and the ASCII Gantt renderer."""

import pytest

from repro.analysis.gantt import render_gantt
from repro.core.er_parallel import ERConfig, parallel_er
from repro.errors import SimulationError
from repro.sim import Compute, Engine, SimLock, Acquire, Release
from repro.sim.metrics import ProcessorMetrics, SimReport

from conftest import random_problem


def run_recorded(workers):
    return Engine(workers, record_timeline=True).run()


class TestTimelineRecording:
    def test_busy_interval(self):
        def worker():
            yield Compute(10.0)

        report = run_recorded([worker()])
        assert report.processors[0].timeline == [("busy", 0.0, 10.0)]

    def test_lock_wait_interval(self):
        lock = SimLock("l")

        def worker():
            yield Acquire(lock)
            yield Compute(5.0)
            yield Release(lock)

        report = run_recorded([worker(), worker()])
        second = report.processors[1].timeline
        assert ("lock", 0.0, 5.0) in second

    def test_no_timeline_by_default(self):
        def worker():
            yield Compute(1.0)

        report = Engine([worker()]).run()
        assert report.processors[0].timeline is None

    def test_zero_cost_compute_not_recorded(self):
        def worker():
            yield Compute(0.0)
            yield Compute(2.0)

        report = run_recorded([worker()])
        assert len(report.processors[0].timeline) == 1


class TestRenderGantt:
    def test_basic_rendering(self):
        def worker(units):
            yield Compute(units)

        report = run_recorded([worker(10.0), worker(4.0)])
        text = render_gantt(report, width=20)
        lines = text.splitlines()
        assert lines[1].startswith("P0")
        assert "#" in lines[1]
        # The shorter worker's row ends in blanks (finished early).
        assert lines[2].rstrip().endswith("#") and lines[2][4:].count("#") < 15

    def test_requires_timeline(self):
        report = SimReport(makespan=5.0, processors=[ProcessorMetrics(busy=5.0)])
        with pytest.raises(SimulationError):
            render_gantt(report)

    def test_width_validation(self):
        report = SimReport(makespan=1.0, processors=[])
        with pytest.raises(SimulationError):
            render_gantt(report, width=4)

    def test_end_to_end_on_parallel_er(self):
        problem = random_problem(3, 5, seed=3)
        result = parallel_er(
            problem, 4, config=ERConfig(serial_depth=3), record_timeline=True
        )
        text = render_gantt(result.report, width=40)
        assert text.count("\n") == 4 + 1  # header + 4 processors + legend
        assert "#" in text

    def test_majority_rendering_ignores_slivers(self):
        """A tiny lock wait inside a long busy slice must not repaint it."""
        lock = SimLock("l")

        def hog():
            yield Acquire(lock)
            yield Compute(1.0)
            yield Release(lock)
            yield Compute(99.0)

        def waiter():
            yield Acquire(lock)
            yield Compute(100.0)
            yield Release(lock)

        report = run_recorded([hog(), waiter()])
        text = render_gantt(report, width=20)
        waiter_row = text.splitlines()[2]
        assert waiter_row.count("!") <= 1  # the 1-unit wait is a sliver
