"""Unit tests for serial ER (the paper's Figure 8)."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.serial_er import er_search
from repro.games.base import SearchProblem
from repro.games.explicit import FIGURE7, ExplicitTree, negmax_of_spec
from repro.games.random_tree import IncrementalGameTree, RandomGameTree, SyntheticOrderedTree
from repro.search.alphabeta import alphabeta
from repro.search.negamax import negamax

from conftest import explicit_problem

leaf = st.integers(min_value=-50, max_value=50)
tree_spec = st.recursive(leaf, lambda child: st.lists(child, min_size=1, max_size=3), max_leaves=25)


class TestCorrectness:
    @given(tree_spec)
    def test_equals_negamax_on_explicit_trees(self, spec):
        assert er_search(explicit_problem(spec)).value == negmax_of_spec(spec)

    def test_equals_negamax_on_random_trees(self, small_random_problems):
        for problem in small_random_problems:
            assert er_search(problem).value == negamax(problem).value

    @given(st.integers(2, 4), st.integers(1, 4), st.integers(0, 10))
    def test_on_synthetic_ordered_trees(self, degree, height, seed):
        tree = SyntheticOrderedTree(degree, height, seed=seed, best_child="random")
        problem = SearchProblem(tree, depth=height)
        assert er_search(problem).value == float(tree.root_value)

    def test_figure7_tree(self):
        """The paper's Figure 7 walk ends with root value -(-13)... i.e.
        the root's value comes from O's subtree."""
        problem = explicit_problem(FIGURE7)
        truth = negmax_of_spec(FIGURE7)
        assert er_search(problem).value == truth
        assert alphabeta(problem).value == truth

    def test_single_leaf(self):
        assert er_search(explicit_problem(42)).value == 42.0

    def test_unary_chain(self):
        spec = [[[7]]]
        assert er_search(explicit_problem(spec)).value == negmax_of_spec(spec)

    def test_depth_zero(self):
        game = ExplicitTree([1, 2])
        problem = SearchProblem(game, depth=0)
        assert er_search(problem).value == negmax_of_spec([1, 2])


class TestWindows:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            er_search(explicit_problem([1, 2]), alpha=0, beta=0)

    @given(tree_spec, st.integers(-60, 60), st.integers(1, 40))
    def test_window_semantics(self, spec, low, width):
        high = low + width
        truth = negmax_of_spec(spec)
        result = er_search(explicit_problem(spec), alpha=low, beta=high)
        if low < truth < high:
            assert result.value == truth
        elif truth <= low:
            assert result.value <= low
        else:
            assert result.value >= high


class TestBehaviour:
    def test_prunes_relative_to_negamax(self):
        problem = SearchProblem(RandomGameTree(4, 6, seed=7), depth=6)
        er = er_search(problem)
        nm = negamax(problem)
        assert er.stats.leaf_evals < nm.stats.leaf_evals

    def test_no_sorting_charge_for_e_node_successors(self):
        """ER must charge fewer ordering evaluations than alpha-beta on a
        sorted problem: successors of e-nodes are not statically sorted
        (Section 7, the source of the O1 anomaly)."""
        tree = IncrementalGameTree(4, 5, seed=1, noise=0.3)
        problem = SearchProblem(tree, depth=5, sort_below_root=5)
        er = er_search(problem)
        ab = alphabeta(problem)
        assert er.value == ab.value
        # ER sorts r-node/undecided successors only; AB sorts everywhere it
        # visits, including along the principal variation.
        assert er.stats.ordering_evals < ab.stats.ordering_evals + er.stats.leaf_evals

    def test_odd_depth_favours_er(self):
        """Reproduces the paper's R2 observation: on odd search depths the
        elder-grandchild heuristic tends to make ER competitive."""
        even = SearchProblem(RandomGameTree(4, 8, seed=101), depth=8)
        odd = SearchProblem(RandomGameTree(4, 9, seed=101), depth=9)
        ratio_even = er_search(even).cost / alphabeta(even).cost
        ratio_odd = er_search(odd).cost / alphabeta(odd).cost
        assert ratio_odd < ratio_even

    def test_cutoff_counted(self):
        problem = explicit_problem([-7, [5, 999]])
        result = er_search(problem)
        assert result.stats.cutoffs >= 1

    def test_sorted_ordering_charges(self):
        tree = RandomGameTree(3, 4, seed=0)
        plain = er_search(SearchProblem(tree, depth=4))
        sorted_ = er_search(SearchProblem(tree, depth=4, sort_below_root=4))
        assert plain.stats.ordering_evals == 0
        assert sorted_.stats.ordering_evals > 0
        assert plain.value == sorted_.value

    def test_trace_collection(self):
        from repro.search.stats import SearchStats

        stats = SearchStats.with_trace()
        er_search(explicit_problem([[1, 2], [3, 4]]), stats=stats)
        assert () in stats.trace
        assert (0,) in stats.trace and (1,) in stats.trace
