"""Tests for workload characterization (ordering quality, branching)."""

from repro.analysis.tree_stats import branching_profile, ordering_quality
from repro.games.base import SearchProblem
from repro.games.othello import Othello
from repro.games.random_tree import (
    IncrementalGameTree,
    RandomGameTree,
    SyntheticOrderedTree,
)


class TestOrderingQuality:
    def test_perfectly_ordered_tree_scores_one(self):
        tree = SyntheticOrderedTree(4, 5, seed=0)
        problem = SearchProblem(tree, depth=5)
        quality = ordering_quality(problem, sample_plies=2)
        assert quality.first_is_best == 1.0
        assert quality.best_in_first_quarter == 1.0
        assert quality.strongly_ordered

    def test_worst_first_tree_scores_zero(self):
        tree = SyntheticOrderedTree(4, 5, seed=0, best_child="last")
        problem = SearchProblem(tree, depth=5)
        quality = ordering_quality(problem, sample_plies=2)
        assert quality.first_is_best == 0.0
        assert not quality.strongly_ordered

    def test_random_tree_is_not_strongly_ordered(self):
        tree = RandomGameTree(4, 5, seed=3)
        problem = SearchProblem(tree, depth=5)
        quality = ordering_quality(problem, sample_plies=2)
        assert not quality.strongly_ordered
        # Uninformative ordering: first-is-best around 1/degree.
        assert quality.first_is_best < 0.7

    def test_incremental_tree_beats_uniform_random_after_sorting(self):
        """The incremental model exists to produce partially ordered
        trees: once children are sorted by the static evaluator, its
        ordering quality must dominate the uniform model's (whose
        evaluator is pure noise)."""
        uniform = SearchProblem(RandomGameTree(4, 5, seed=3), depth=5)
        incremental = SearchProblem(
            IncrementalGameTree(4, 5, seed=3, noise=0.0), depth=5
        )
        q_uniform = ordering_quality(uniform, sample_plies=3, static_sort=True)
        q_incremental = ordering_quality(incremental, sample_plies=3, static_sort=True)
        assert q_incremental.first_is_best > q_uniform.first_is_best

    def test_leafless_sample_is_trivially_ordered(self):
        problem = SearchProblem(RandomGameTree(3, 2, seed=0), depth=0)
        quality = ordering_quality(problem, sample_plies=2)
        assert quality.nodes_sampled == 0
        assert quality.strongly_ordered


class TestBranchingProfile:
    def test_uniform_tree(self):
        problem = SearchProblem(RandomGameTree(5, 4, seed=0), depth=4)
        profile = branching_profile(problem, sample_plies=2)
        assert profile.min_branching == profile.max_branching == 5
        assert profile.mean_branching == 5.0
        assert profile.interior_nodes == 1 + 5

    def test_othello_varying_branching(self):
        """Table 3 lists Othello's degree as 'varying'."""
        problem = SearchProblem(Othello(), depth=4)
        profile = branching_profile(problem, sample_plies=3)
        assert profile.min_branching >= 1
        assert profile.max_branching > profile.min_branching
        assert profile.interior_nodes > 1

    def test_empty_sample(self):
        problem = SearchProblem(RandomGameTree(3, 3, seed=0), depth=0)
        profile = branching_profile(problem)
        assert profile.interior_nodes == 0
