"""Live tracing and telemetry: rings, calibration, merge, feed, exporters.

The span machinery is exercised with injected fake clocks so every
geometric assertion is exact; the real backends are then run traced at
small scale to check the end-to-end path — spans collected across
threads/processes, merged onto one timeline, and agreeing with the
backends' own busy accounting.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.core.er_parallel import ERConfig
from repro.errors import SearchError
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree
from repro.obs import aggregate, observing
from repro.obs import events as obs_events
from repro.obs import live
from repro.obs.export import render_chrome_trace
from repro.obs.promtext import MetricsServer, render_prometheus
from repro.obs.registry import MetricsRegistry, feed_event
from repro.parallel.multiproc import multiproc_er
from repro.parallel.threaded import threaded_er_observed

_SEED = 7


def _problem() -> SearchProblem:
    return SearchProblem(RandomGameTree(3, 5, seed=_SEED), depth=5)


class _FakeClock:
    """Deterministic monotonic clock advancing a fixed step per read."""

    def __init__(self, start: float = 0.0, step: float = 0.001) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ---------------------------------------------------------------------------
# SpanRing.
# ---------------------------------------------------------------------------


class TestSpanRing:
    def test_begin_end_records_span(self) -> None:
        ring = live.SpanRing(8, clock=_FakeClock())
        token = ring.begin()
        assert token > 0.0
        ring.end("tt", "probe", token)
        spans = ring.drain()
        assert len(spans) == 1
        cat, name, t0, t1 = spans[0]
        assert (cat, name) == ("tt", "probe")
        assert t1 > t0

    def test_negative_token_is_noop(self) -> None:
        ring = live.SpanRing(8, clock=_FakeClock())
        ring.end("tt", "probe", -1.0)
        assert ring.drain() == []
        assert ring.recorded == 0

    def test_capacity_bounds_memory_and_counts_drops(self) -> None:
        ring = live.SpanRing(4, clock=_FakeClock())
        for i in range(10):
            ring.record("task", f"t{i}", float(i), float(i) + 0.5)
        assert ring.recorded == 10
        assert ring.dropped == 6
        spans = ring.drain()
        assert len(spans) == 4
        # Oldest-first, and only the newest `capacity` survive.
        assert [s[1] for s in spans] == ["t6", "t7", "t8", "t9"]

    def test_counters_survive_drain(self) -> None:
        ring = live.SpanRing(2, clock=_FakeClock())
        for i in range(5):
            ring.record("task", "t", float(i), float(i) + 1.0)
        assert ring.dropped == 3
        cost_before = ring.self_cost_seconds
        ring.drain()
        assert ring.dropped == 3
        assert ring.recorded == 5
        assert ring.self_cost_seconds == cost_before
        dropped, cost = ring.snapshot_counters()
        assert (dropped, cost) == (3, cost_before)
        # The emptied ring accepts new spans without double counting.
        ring.record("task", "u", 9.0, 9.5)
        assert [s[1] for s in ring.drain()] == ["u"]

    def test_sampled_stride_records_one_in_n(self) -> None:
        ring = live.SpanRing(64, stride=4, clock=_FakeClock())
        recorded = sum(1 for _ in range(16) if ring.begin() > 0.0)
        assert recorded == 4
        for _ in range(16):
            ring.record("task", "t", 0.0, 1.0)
        assert ring.recorded == 4

    def test_self_cost_accumulates(self) -> None:
        ring = live.SpanRing(8, clock=_FakeClock(step=0.01))
        ring.record("task", "t", 0.0, 1.0)
        assert ring.self_cost_seconds > 0.0

    def test_invalid_configuration_rejected(self) -> None:
        with pytest.raises(ValueError):
            live.SpanRing(0)
        with pytest.raises(ValueError):
            live.SpanRing(4, stride=0)

    def test_ring_for_mode(self) -> None:
        assert live.ring_for_mode(live.TRACE_OFF) is None
        sampled = live.ring_for_mode(live.TRACE_SAMPLED)
        full = live.ring_for_mode(live.TRACE_FULL)
        assert sampled is not None and sampled._stride == live.SAMPLED_STRIDE
        assert full is not None and full._stride == 1
        with pytest.raises(ValueError):
            live.ring_for_mode("verbose")

    def test_install_uninstall_ring(self) -> None:
        assert live.RING is None
        try:
            ring = live.install_ring(live.TRACE_FULL)
            assert live.RING is ring and ring is not None
        finally:
            live.uninstall_ring()
        assert live.RING is None


# ---------------------------------------------------------------------------
# Clock-offset calibration and the merged timeline.
# ---------------------------------------------------------------------------


class TestOffsetEstimator:
    def test_snaps_to_zero_when_bounds_allow(self) -> None:
        est = live.OffsetEstimator()
        # Same clock domain: worker interval inside the coordinator's.
        est.observe(10.0, 10.1, 10.4, 10.5)
        assert est.lo == pytest.approx(-0.1)
        assert est.hi == pytest.approx(0.1)
        assert est.offset == 0.0

    def test_recovers_shifted_clock(self) -> None:
        est = live.OffsetEstimator()
        shift = 100.0  # worker clock runs 100s behind the coordinator
        for submit, start, end, receive in (
            (10.0, -89.95, -89.5, 10.55),
            (20.0, -79.98, -79.6, 20.45),
        ):
            est.observe(submit, start, end, receive)
        assert est.lo <= shift <= est.hi
        assert est.offset == pytest.approx(shift, abs=0.1)

    def test_no_observations_means_zero(self) -> None:
        assert live.OffsetEstimator().offset == 0.0

    def test_inconsistent_bounds_split_the_difference(self) -> None:
        est = live.OffsetEstimator()
        est.observe(10.0, 5.0, 5.5, 10.6)  # delta in [5.0, 5.1]
        est.observe(20.0, 14.6, 15.1, 20.0)  # delta in [5.4, 4.9]
        assert est.lo > est.hi
        assert est.lo >= est.offset >= est.hi

    @staticmethod
    def _round_trip(
        est: live.OffsetEstimator,
        c_submit: float,
        *,
        skew: float,
        dispatch: float,
        work: float,
        reply: float,
    ) -> None:
        """One simulated task against a worker clock ``skew`` s behind.

        coordinator = worker + skew, so the true offset δ is ``skew``;
        the observation bounds it to ``[skew - dispatch, skew + reply]``.
        """
        w_start = (c_submit + dispatch) - skew
        w_end = w_start + work
        est.observe(c_submit, w_start, w_end, c_submit + dispatch + work + reply)

    def test_injected_constant_skew_recovered_within_latency(self) -> None:
        # A worker clock 50s behind with millisecond-scale messaging
        # latencies: the estimate must land within the latency bound and
        # must NOT snap to zero (zero is far outside the interval).
        est = live.OffsetEstimator()
        skew = 50.0
        clock = 100.0
        for dispatch, reply in ((0.002, 0.001), (0.0015, 0.002), (0.001, 0.0005)):
            self._round_trip(
                est, clock, skew=skew, dispatch=dispatch, work=0.3, reply=reply
            )
            clock += 1.0
        assert est.lo <= skew <= est.hi
        assert est.offset != 0.0
        assert est.offset == pytest.approx(skew, abs=0.002)

    def test_intersection_narrows_monotonically(self) -> None:
        # Each observation can only tighten the interval: lo never
        # decreases, hi never increases, width never grows — and the
        # final width is set by the single tightest round-trip.
        est = live.OffsetEstimator()
        skew = 7.0
        clock = 0.0
        latencies = [(0.05, 0.04), (0.01, 0.03), (0.002, 0.001), (0.02, 0.02)]
        widths: list[float] = []
        lo_prev, hi_prev = est.lo, est.hi
        for dispatch, reply in latencies:
            self._round_trip(
                est, clock, skew=skew, dispatch=dispatch, work=0.1, reply=reply
            )
            clock += 1.0
            assert est.lo >= lo_prev and est.hi <= hi_prev
            lo_prev, hi_prev = est.lo, est.hi
            widths.append(est.width)
        assert widths == sorted(widths, reverse=True)
        assert est.width == pytest.approx(min(d + r for d, r in latencies))

    def test_drift_within_run_gives_inconsistent_midpoint(self) -> None:
        # A worker clock drifting between observations breaks the
        # constant-offset model: the intervals stop intersecting and the
        # estimator splits the difference rather than crashing or
        # pretending certainty.
        est = live.OffsetEstimator()
        clock = 0.0
        for skew in (5.0, 5.1, 5.2):
            self._round_trip(
                est, clock, skew=skew, dispatch=0.01, work=0.2, reply=0.01
            )
            clock += 1.0
        assert est.lo > est.hi  # inconsistent: drift exceeded latency slack
        assert est.offset == pytest.approx((est.lo + est.hi) / 2.0)
        assert 5.0 < est.offset < 5.2

    def test_snap_to_zero_exactly_at_the_boundary(self) -> None:
        # lo == 0 and hi == 0 are both still "zero is plausible".
        at_lo = live.OffsetEstimator()
        at_lo.observe(10.0, 10.0, 10.4, 10.5)  # delta in [0.0, 0.1]
        assert at_lo.lo == 0.0 and at_lo.offset == 0.0
        at_hi = live.OffsetEstimator()
        at_hi.observe(10.0, 10.1, 10.5, 10.5)  # delta in [-0.1, 0.0]
        assert at_hi.hi == 0.0 and at_hi.offset == 0.0
        # Nudge lo past zero and the snap must stop: midpoint estimate.
        past = live.OffsetEstimator()
        past.observe(10.0, 9.99, 10.4, 10.5)  # delta in [0.01, 0.1]
        assert past.lo > 0.0
        assert past.offset == pytest.approx(0.055)

    def test_merge_rebases_and_sorts(self) -> None:
        spans = {
            0: [("task", "a", 5.0, 6.0)],
            1: [("task", "b", 1.0, 2.0)],
            live.COORDINATOR: [("heap", "wait", 4.8, 4.9)],
        }
        merged = live.merge_spans(spans, {1: 4.5})
        assert [s.name for s in merged] == ["wait", "a", "b"]
        b = merged[-1]
        assert b.start == pytest.approx(5.5)
        assert b.end == pytest.approx(6.5)
        assert b.duration == pytest.approx(1.0)

    def test_live_trace_accessors(self) -> None:
        trace = live.LiveTrace(
            mode=live.TRACE_FULL,
            spans=live.merge_spans(
                {0: [("task", "a", 0.0, 2.0)], 1: [("task", "b", 0.0, 1.0)]}, {}
            ),
            pids={0: 100, 1: 101, live.COORDINATOR: 99},
            dropped={0: 2, 1: 3},
            self_cost_seconds=0.05,
        )
        assert trace.workers() == [live.COORDINATOR, 0, 1]
        assert trace.busy_seconds() == {0: pytest.approx(2.0), 1: pytest.approx(1.0)}
        assert trace.total_dropped == 5
        assert trace.overhead_fraction(1.0) == pytest.approx(0.05)
        assert trace.overhead_fraction(0.0) == 0.0

    def test_spans_as_events(self) -> None:
        spans = live.merge_spans({0: [("tt", "probe", 1.0, 2.0)]}, {})
        events = live.spans_as_events(spans)
        assert len(events) == 1
        assert events[0].etype == "live-span"
        assert events[0].data["end"] == 2.0


# ---------------------------------------------------------------------------
# Live feed: identical accounting to the post-hoc aggregation.
# ---------------------------------------------------------------------------


class TestLiveFeed:
    def test_live_feed_matches_posthoc_aggregate(self) -> None:
        feed = live.LiveFeed()
        with observing() as bus:
            bus.attach_live(feed.on_event)
            multiproc_er(_problem(), 2, config=ERConfig(serial_depth=2))
        assert feed.n_events == len(bus.events)
        posthoc = aggregate(bus).collect()
        collected = feed.collect()
        assert collected  # the run produced metrics
        for key, value in collected.items():
            assert posthoc[key] == value, key

    def test_feed_counts_per_worker_busy(self) -> None:
        feed = live.LiveFeed()
        bus = obs_events.EventBus(clock=lambda: 0.0)
        bus.attach_live(feed.on_event)
        bus.emit(obs_events.EV_TASK_RESULT, worker=0, duration=0.5, applied=True)
        bus.emit(obs_events.EV_TASK_RESULT, worker=0, duration=0.25, applied=False)
        bus.emit(obs_events.EV_TASK_RESULT, worker=1, duration=0.125, applied=True)
        metrics = feed.collect()
        assert metrics["workers.w0.busy_applied_seconds"] == pytest.approx(0.5)
        assert metrics["workers.w0.busy_wasted_seconds"] == pytest.approx(0.25)
        assert metrics["workers.w1.busy_applied_seconds"] == pytest.approx(0.125)

    def test_non_worker_results_not_misfiled(self) -> None:
        registry = MetricsRegistry()
        bus = obs_events.EventBus(clock=lambda: 0.0)
        bus.emit(obs_events.EV_TASK_RESULT, duration=0.5)  # no worker id
        feed_event(registry, bus.events[0])
        assert not any(k.startswith("workers.") for k in registry.collect())

    def test_render_top_frame(self) -> None:
        feed = live.LiveFeed()
        bus = obs_events.EventBus(clock=lambda: 0.0)
        bus.attach_live(feed.on_event)
        bus.emit(obs_events.EV_TASK_SUBMIT, kind="explore")
        bus.emit(obs_events.EV_TASK_RESULT, worker=0, duration=0.5, applied=True)
        bus.emit(obs_events.EV_QUEUE_DEPTH, queue="heap.primary", depth=3)
        bus.emit(obs_events.EV_TT_PROBE, hit=True)
        frame = live.render_top(
            feed.collect(), workload="R3", backend="multiproc",
            n_workers=2, elapsed=1.0,
        )
        assert "R3 multiproc P=2" in frame
        assert "submitted=1 completed=1" in frame
        assert "heap.primary=3" in frame
        assert "tt: 1/1" in frame
        assert "w0" in frame and "w1" in frame
        done = live.render_top(
            feed.collect(), workload="R3", backend="multiproc",
            n_workers=2, elapsed=1.0, done=True,
        )
        assert "done" in done

    def test_render_top_handles_empty_metrics(self) -> None:
        frame = live.render_top(
            {}, workload="R1", backend="threaded", n_workers=1, elapsed=0.0
        )
        assert "running" in frame


# ---------------------------------------------------------------------------
# EventBus under concurrent emission (8 real threads).
# ---------------------------------------------------------------------------


class TestEventBusConcurrency:
    N_THREADS = 8
    PER_THREAD = 500

    def _hammer(self, bus: obs_events.EventBus) -> None:
        barrier = threading.Barrier(self.N_THREADS)

        def emitter(tid: int) -> None:
            barrier.wait()
            for i in range(self.PER_THREAD):
                bus.emit(obs_events.EV_TASK_RESULT, worker=tid, duration=1.0, seq=i)

        threads = [
            threading.Thread(target=emitter, args=(tid,)) for tid in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_no_event_loss_or_corruption(self) -> None:
        bus = obs_events.EventBus()
        self._hammer(bus)
        assert len(bus.events) == self.N_THREADS * self.PER_THREAD
        per_thread: dict[object, set[object]] = {}
        for event in bus.events:
            assert event.etype == obs_events.EV_TASK_RESULT
            assert event.data["duration"] == 1.0
            per_thread.setdefault(event.data["worker"], set()).add(event.data["seq"])
        # Every (worker, seq) pair arrived exactly once: no loss, no dupes.
        assert per_thread == {
            tid: set(range(self.PER_THREAD)) for tid in range(self.N_THREADS)
        }

    def test_timestamp_sort_yields_coherent_merge(self) -> None:
        bus = obs_events.EventBus()
        self._hammer(bus)
        merged = sorted(bus.events, key=lambda e: e.ts)
        assert len(merged) == len(bus.events)
        assert all(a.ts <= b.ts for a, b in zip(merged, merged[1:]))
        # Per-thread emission order is preserved by the per-event clock
        # stamp: each thread's seq numbers ascend with its timestamps.
        by_thread: dict[object, list[object]] = {}
        for event in merged:
            by_thread.setdefault(event.data["worker"], []).append(event.data["seq"])
        for seqs in by_thread.values():
            assert seqs == sorted(seqs)  # type: ignore[type-var]

    def test_live_sink_sees_every_event(self) -> None:
        feed = live.LiveFeed()
        bus = obs_events.EventBus()
        bus.attach_live(feed.on_event)
        self._hammer(bus)
        assert feed.n_events == self.N_THREADS * self.PER_THREAD
        total = self.N_THREADS * self.PER_THREAD
        metrics = feed.collect()
        busy = 0.0
        for tid in range(self.N_THREADS):
            value = metrics.get(f"workers.w{tid}.busy_applied_seconds", 0.0)
            assert isinstance(value, float)
            busy += value
        assert busy == pytest.approx(float(total))


# ---------------------------------------------------------------------------
# Traced real-backend runs, end to end.
# ---------------------------------------------------------------------------


class TestTracedBackends:
    def test_threaded_traced_run(self) -> None:
        baseline = threaded_er_observed(_problem(), 2, config=ERConfig(serial_depth=2))
        traced = threaded_er_observed(
            _problem(), 2, config=ERConfig(serial_depth=2), trace=live.TRACE_FULL
        )
        assert baseline.trace is None
        trace = traced.trace
        assert trace is not None
        assert traced.value == baseline.value
        assert trace.mode == live.TRACE_FULL
        assert trace.spans
        cats = {span.cat for span in trace.spans}
        assert "task" in cats
        # Threads share one clock: no offsets, one OS pid.
        assert all(offset == 0.0 for offset in trace.offsets.values())
        assert len(set(trace.pids.values())) == 1
        assert set(trace.busy_seconds()) == {0, 1}

    def test_threaded_rejects_unknown_mode(self) -> None:
        with pytest.raises(SearchError):
            threaded_er_observed(_problem(), 2, trace="verbose")

    def test_multiproc_traced_run_agrees_with_per_worker(self) -> None:
        result = multiproc_er(
            _problem(), 2, config=ERConfig(serial_depth=2), trace=live.TRACE_FULL
        )
        trace = result.trace
        assert trace is not None
        assert trace.spans
        busy = trace.busy_seconds()
        assert set(busy) == set(result.per_worker)
        for index, split in result.per_worker.items():
            expected = split["applied"] + split["wasted"]
            # Acceptance bar: per-worker busy seconds from spans agree
            # with the result-channel accounting within 2%.
            assert busy[index] == pytest.approx(expected, rel=0.02, abs=5e-4)
        # One pid row per worker plus the coordinator, all distinct.
        assert set(trace.pids) == {live.COORDINATOR, *result.per_worker}
        assert trace.pids[live.COORDINATOR] not in {
            trace.pids[i] for i in result.per_worker
        }
        for index, split in result.per_worker.items():
            assert trace.pids[index] == int(split["pid"])

    def test_multiproc_untraced_has_no_trace(self) -> None:
        result = multiproc_er(_problem(), 2, config=ERConfig(serial_depth=2))
        assert result.trace is None

    def test_multiproc_rejects_unknown_mode(self) -> None:
        with pytest.raises(SearchError):
            multiproc_er(_problem(), 2, trace="verbose")

    def test_chrome_trace_renders_live_rows(self) -> None:
        trace = live.LiveTrace(
            mode=live.TRACE_FULL,
            spans=live.merge_spans(
                {
                    0: [("task", "explore", 1.0, 2.0), ("tt", "probe", 1.2, 1.3)],
                    live.COORDINATOR: [("heap", "wait", 0.5, 0.9)],
                },
                {},
            ),
            pids={0: 4242, live.COORDINATOR: 4241},
        )
        import json

        payload = json.loads(
            render_chrome_trace([], time_unit="seconds", live=trace)
        )
        events = payload["traceEvents"]
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "worker 0 (os pid 4242)" in names
        assert "coordinator (os pid 4241)" in names
        spans = [e for e in events if str(e.get("cat", "")).startswith("live-")]
        assert len(spans) == 3
        # Rebased to the earliest span; microsecond scale.
        starts = sorted(e["ts"] for e in spans)
        assert starts[0] == pytest.approx(0.0)
        assert max(e["ts"] + e["dur"] for e in spans) == pytest.approx(1.5e6)


# ---------------------------------------------------------------------------
# Prometheus text exporter.
# ---------------------------------------------------------------------------


class TestPromText:
    def test_render_counter_histogram_series(self) -> None:
        text = render_prometheus(
            {
                "tasks.completed": 12,
                "task.duration": {
                    "count": 3.0, "total": 1.5, "min": 0.25, "max": 1.0, "mean": 0.5,
                },
                "queue.depth.heap": {"peak": 9.0, "last": 2.0, "samples": 40.0},
            }
        )
        assert "# TYPE repro_tasks_completed gauge\nrepro_tasks_completed 12\n" in text
        assert "repro_task_duration_count 3" in text
        assert "repro_task_duration_sum 1.5" in text
        assert "repro_task_duration_mean 0.5" in text
        assert "repro_queue_depth_heap_peak 9" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self) -> None:
        assert render_prometheus({}) == ""

    def test_name_sanitization(self) -> None:
        text = render_prometheus({"workers.w0.busy-applied s": 1})
        assert "repro_workers_w0_busy_applied_s 1" in text

    def test_metrics_server_scrape(self) -> None:
        feed = live.LiveFeed()
        bus = obs_events.EventBus(clock=lambda: 0.0)
        bus.attach_live(feed.on_event)
        bus.emit(obs_events.EV_TASK_SUBMIT, kind="explore")
        server = MetricsServer(feed.collect).start()
        try:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers["Content-Type"]
            assert "repro_tasks_submitted 1" in body
            assert content_type.startswith("text/plain")
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    server.url.replace("/metrics", "/other"), timeout=5
                )
        finally:
            server.stop()
