"""Tests for the multiprocess ER backend (correctness and accounting)."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.er_parallel import ERConfig
from repro.core.serial_er import er_search
from repro.engine import EngineConfig, GameEngine
from repro.errors import SearchError
from repro.games.base import SearchProblem
from repro.games.connect4 import ConnectFour
from repro.games.explicit import FIGURE6, FIGURE7, ExplicitTree
from repro.games.othello.game import O1_ROOT, Othello
from repro.games.tictactoe import TicTacToe
from repro.parallel.multiproc import (
    MultiprocResult,
    default_serial_depth,
    format_scaling_table,
    multiproc_er,
    preferred_start_method,
    scaling_run,
)
from repro.search.negamax import negamax
from repro.search.stats import SearchStats

from conftest import random_problem


@pytest.fixture(scope="module")
def pool():
    """One shared worker pool so each test does not pay process startup."""
    context = multiprocessing.get_context(preferred_start_method())
    executor = ProcessPoolExecutor(max_workers=3, mp_context=context)
    yield executor
    executor.shutdown(wait=True, cancel_futures=True)


class TestCorrectness:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_matches_negamax_on_random_trees(self, pool, n_workers):
        for seed in range(3):
            problem = random_problem(3, 4, seed)
            truth = negamax(problem).value
            result = multiproc_er(
                problem, n_workers, config=ERConfig(serial_depth=2), executor=pool
            )
            assert result.value == truth
            assert result.stats.nodes_generated > 0

    def test_default_config_offloads_subtrees(self, pool):
        problem = random_problem(3, 5, seed=1)
        truth = negamax(problem).value
        result = multiproc_er(problem, 2, executor=pool)
        assert result.value == truth
        assert result.extras["tasks_submitted"] > 0

    def test_serial_depth_zero_ships_the_root(self, pool):
        """The root itself is a serial task: one worker does everything."""
        problem = random_problem(2, 4, seed=3)
        result = multiproc_er(
            problem, 2, config=ERConfig(serial_depth=0), executor=pool
        )
        assert result.value == negamax(problem).value
        assert result.extras["tasks_submitted"] == 1

    def test_no_cutover_runs_in_coordinator(self, pool):
        """With the simulator's no-cutover default every node is processed
        by the coordinator; the pool is never used but values still agree."""
        problem = random_problem(2, 3, seed=0)
        result = multiproc_er(
            problem, 2, config=ERConfig(serial_depth=1_000_000), executor=pool
        )
        assert result.value == negamax(problem).value
        assert result.extras["tasks_submitted"] == 0

    def test_refutation_tasks_exercised(self, pool):
        """Deep trees with a mid cutover hit the remaining-children path."""
        exercised = 0
        for seed in range(4):
            problem = random_problem(3, 5, seed)
            truth = negamax(problem).value
            result = multiproc_er(
                problem,
                2,
                config=ERConfig(serial_depth=2, max_e_children=2),
                executor=pool,
            )
            assert result.value == truth
            exercised += result.extras["refutation_conversions"]
        assert exercised > 0

    def test_explicit_paper_trees(self, pool):
        for spec, expected in ((FIGURE6, 9.0), (FIGURE7, -11.0)):
            game = ExplicitTree(spec)
            problem = SearchProblem(game, depth=game.height)
            result = multiproc_er(
                problem, 2, config=ERConfig(serial_depth=1), executor=pool
            )
            assert result.value == expected

    def test_real_games(self, pool):
        for problem in (
            SearchProblem(TicTacToe(), depth=4),
            SearchProblem(ConnectFour(5, 4), depth=4),
            SearchProblem(Othello(O1_ROOT), depth=3, sort_below_root=2),
        ):
            truth = negamax(problem).value
            result = multiproc_er(
                problem, 2, config=ERConfig(serial_depth=2), executor=pool
            )
            assert result.value == truth

    def test_agrees_with_serial_er_stats_scale(self, pool):
        """Merged node accounting lands in the same ballpark as serial ER
        (same cost model, so the numbers are directly comparable)."""
        problem = random_problem(3, 5, seed=7)
        serial = er_search(problem)
        result = multiproc_er(
            problem,
            2,
            config=ERConfig(serial_depth=2, max_e_children=1),
            executor=pool,
        )
        assert result.value == serial.value
        assert result.stats.leaf_evals >= serial.stats.leaf_evals * 0.5


class TestAccounting:
    def test_loss_fractions_partition_processor_time(self, pool):
        problem = random_problem(3, 5, seed=2)
        result = multiproc_er(
            problem, 2, config=ERConfig(serial_depth=2), executor=pool
        )
        assert result.wall_time > 0
        for fraction in (
            result.starvation_fraction,
            result.interference_fraction,
            result.speculative_fraction,
        ):
            assert 0.0 <= fraction <= 1.0
        busy_fraction = result.busy_applied_seconds / result.processor_seconds
        total = (
            busy_fraction
            + result.speculative_fraction
            + result.starvation_fraction
            + result.interference_fraction
        )
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_task_counters_close(self, pool):
        problem = random_problem(3, 4, seed=5)
        result = multiproc_er(
            problem, 2, config=ERConfig(serial_depth=2), executor=pool
        )
        extras = result.extras
        assert extras["tasks_submitted"] == (
            extras["tasks_applied"]
            + extras["tasks_discarded"]
            + extras["tasks_orphaned"]
        )
        assert extras["tasks_applied"] > 0

    def test_speedup_and_efficiency_math(self):
        result = MultiprocResult(
            value=0.0, n_workers=4, wall_time=2.0, stats=SearchStats()
        )
        assert result.speedup(4.0) == pytest.approx(2.0)
        assert result.efficiency(4.0) == pytest.approx(0.5)


class TestScalingHelpers:
    def test_scaling_run_and_table(self, pool):
        problem = random_problem(3, 4, seed=0)
        serial_seconds, points = scaling_run(
            problem, (1, 2), config=ERConfig(serial_depth=2)
        )
        assert serial_seconds > 0
        assert [p.n_workers for p in points] == [1, 2]
        truth = negamax(problem).value
        assert all(p.result.value == truth for p in points)
        table = format_scaling_table("T1", serial_seconds, points)
        assert "T1" in table and "P=1" in table and "speedup" in table
        assert "starvation=" in table and "speculative=" in table

    def test_default_serial_depth_bounds(self):
        assert default_serial_depth(9) == 6
        assert default_serial_depth(2) == 1
        assert default_serial_depth(0) == 1


class TestEngineBackend:
    def test_engine_multiproc_matches_er(self):
        game = ConnectFour(4, 4)
        base = EngineConfig(algorithm="er", max_depth=3)
        multi = EngineConfig(algorithm="multiproc-er", n_processors=2, max_depth=3)
        choice_er = GameEngine(game, base).choose(game.root())
        choice_mp = GameEngine(game, multi).choose(game.root())
        assert choice_mp.move_index == choice_er.move_index
        assert choice_mp.per_move_values == choice_er.per_move_values


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(SearchError):
            multiproc_er(random_problem(2, 2, 0), 0)

    def test_distributed_heap_is_coordinator_hosted(self, pool):
        """The distributed_heap flag is ignored, not an error."""
        problem = random_problem(2, 4, seed=1)
        result = multiproc_er(
            problem,
            2,
            config=ERConfig(serial_depth=2, distributed_heap=True),
            executor=pool,
        )
        assert result.value == negamax(problem).value
        assert result.extras["steals"] == 0
