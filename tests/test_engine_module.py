"""Tests for the game-playing engine layer."""

import pytest

from repro.engine import EngineConfig, GameEngine, play_match
from repro.errors import SearchError
from repro.games.base import SearchProblem
from repro.games.explicit import ExplicitTree
from repro.games.random_tree import RandomGameTree
from repro.games.tictactoe import TicTacToe, winner
from repro.search.negamax import negamax


class TestConfig:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SearchError):
            EngineConfig(algorithm="mcts")

    def test_rejects_bad_depth(self):
        with pytest.raises(SearchError):
            EngineConfig(max_depth=0)

    def test_rejects_bad_processors(self):
        with pytest.raises(SearchError):
            EngineConfig(n_processors=0)


class TestChoose:
    def test_picks_the_obvious_best_move(self):
        # Child 1 is clearly best for the mover (its value is lowest).
        game = ExplicitTree([5, -9, 3])
        engine = GameEngine(game, EngineConfig(max_depth=1))
        choice = engine.choose(game.root())
        assert choice.move_index == 1
        assert choice.value == 9.0

    def test_choice_matches_negamax(self):
        game = RandomGameTree(3, 4, seed=5)
        problem = SearchProblem(game, depth=4)
        truth = negamax(problem)
        engine = GameEngine(game, EngineConfig(max_depth=4, sort_below_root=0))
        choice = engine.choose(game.root())
        assert choice.value == truth.value
        assert choice.move_index == truth.pv[0]

    @pytest.mark.parametrize("algorithm", ["alphabeta", "er", "parallel-er"])
    def test_algorithms_agree(self, algorithm):
        game = RandomGameTree(3, 3, seed=2)
        config = EngineConfig(algorithm=algorithm, max_depth=3, n_processors=3)
        choice = GameEngine(game, config).choose(game.root())
        truth = negamax(SearchProblem(game, depth=3))
        assert choice.value == truth.value

    def test_budget_limits_depth(self):
        game = RandomGameTree(4, 6, seed=1)
        cheap = GameEngine(game, EngineConfig(max_depth=6, budget=1.0))
        choice = cheap.choose(game.root())
        assert choice.depth_reached < 6

    def test_no_moves_raises(self):
        game = ExplicitTree(7)
        engine = GameEngine(game)
        with pytest.raises(SearchError):
            engine.choose(game.root())

    def test_per_move_values_reported(self):
        game = ExplicitTree([1, 2, 3])
        choice = GameEngine(game, EngineConfig(max_depth=1)).choose(game.root())
        assert len(choice.per_move_values) == 3


class TestPlayMatch:
    def test_tictactoe_selfplay_is_a_draw(self):
        """Two depth-9 engines play perfect tic-tac-toe: always a draw."""
        game = TicTacToe()
        strong = EngineConfig(max_depth=6, sort_below_root=0)
        result = play_match(game, GameEngine(game, strong), GameEngine(game, strong))
        cells, _ = result.final_position
        assert winner(cells) == 0  # nobody wins under good play

    def test_match_terminates_and_records_positions(self):
        game = TicTacToe()
        config = EngineConfig(max_depth=2)
        result = play_match(game, GameEngine(game, config), GameEngine(game, config))
        assert result.moves >= 5
        assert len(result.positions) == result.moves + 1

    def test_on_move_callback(self):
        game = TicTacToe()
        config = EngineConfig(max_depth=1)
        seen = []
        play_match(
            game,
            GameEngine(game, config),
            GameEngine(game, config),
            on_move=lambda n, p: seen.append(n),
        )
        assert seen == list(range(1, len(seen) + 1))

    def test_max_moves_cap(self):
        game = TicTacToe()
        config = EngineConfig(max_depth=1)
        result = play_match(game, GameEngine(game, config), GameEngine(game, config), max_moves=3)
        assert result.moves == 3
