"""Request-scoped tracing: conservation, propagation, SLOs, flight records.

The PR-10 contract pinned here, layer by layer:

* :func:`repro.obs.reqtrace.attribute` produces a decomposition that
  conserves *exactly* (within float tolerance) with ``unattributed``
  always reported — the serve-layer sibling of PR 5's
  ``path == makespan`` invariant;
* the ``timing`` wire block round-trips, drops newer versions
  tolerantly, and rejects malformed payloads loudly;
* the scheduler stamps every executed request with a conserved timing
  block on an injected clock, feeds the trace sink, and samples queue
  depth on completion (so the depth series decays back to zero);
* the SLO machinery computes burn rates from good/bad counts and the
  registry histograms render as real Prometheus ``histogram`` families;
* the flight recorder dedupes, sanitizes, bounds its file count, and is
  fired by the scheduler's stall watchdog;
* the Perfetto exporter lays each request's stages end to end over
  exactly ``[arrived_at, finished_at]``;
* end to end: a real service with ``trace_mode="full"`` returns replies
  whose decomposition conserves and whose worker spans carry the
  request tag across process boundaries.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

import pytest

from repro.obs import export, ledger
from repro.obs import live
from repro.obs import reqtrace
from repro.obs.promtext import render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.serve import SearchService, ServeConfig
from repro.serve.api import (
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    STATUS_OK,
    SearchReply,
    SearchRequest,
)
from repro.serve.scheduler import (
    SLO_LATENCY_BOUNDS,
    IterationResult,
    RequestScheduler,
    ServeMetrics,
)
from repro.serve.traffic import (
    latency_fields,
    render_decomposition,
    stage_samples,
    stage_stats,
)

ITERATION_COST = 1.0


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class FakeEngine:
    """Costs ``ITERATION_COST`` clock units per deepening iteration."""

    def __init__(self, clock: FakeClock) -> None:
        self.clock = clock

    async def run_iteration(self, request: SearchRequest, depth: int) -> IterationResult:
        self.clock.advance(ITERATION_COST)
        await asyncio.sleep(0)
        return IterationResult(
            move_index=0, value=float(depth), per_move_values=(float(depth),)
        )


def make_request(
    index: int = 0,
    priority: int = PRIORITY_NORMAL,
    max_depth: int = 2,
    deadline_s: Optional[float] = None,
    span_id: str = "",
) -> SearchRequest:
    return SearchRequest(
        request_id=f"r{index:04d}",
        workload="fake",
        max_depth=max_depth,
        deadline_s=deadline_s,
        priority=priority,
        span_id=span_id,
    )


# ---------------------------------------------------------------------------
# The conservation law.
# ---------------------------------------------------------------------------


class TestAttribution:
    def test_decomposition_conserves_by_construction(self) -> None:
        timing = reqtrace.attribute(
            arrived_at=100.0,
            admitted_at=100.25,
            started_at=101.0,
            finished_at=105.0,
            iterations_s=[1.0, 1.5],
            reply_serialize_s=0.25,
        )
        assert timing.end_to_end_s == pytest.approx(5.0)
        assert timing.admission_s == pytest.approx(0.25)
        assert timing.queue_wait_s == pytest.approx(0.75)
        assert timing.iterations_total_s == pytest.approx(2.5)
        assert timing.unattributed_s == pytest.approx(1.25)
        assert timing.unattributed_s >= 0.0
        gap = timing.components_total_s() - timing.end_to_end_s
        assert abs(gap) <= reqtrace.CONSERVATION_TOL_S
        assert timing.conservation_problems() == []

    def test_unattributed_reported_even_when_zero(self) -> None:
        timing = reqtrace.attribute(
            arrived_at=0.0,
            admitted_at=0.0,
            started_at=0.0,
            finished_at=2.0,
            iterations_s=[2.0],
            reply_serialize_s=0.0,
        )
        assert "unattributed" in timing.stage_seconds()
        assert timing.unattributed_s == pytest.approx(0.0)
        assert timing.conservation_problems() == []

    def test_cross_clock_stamps_are_flagged_not_hidden(self) -> None:
        # Components exceeding end-to-end means two clock domains were
        # mixed; the negative remainder must be flagged, never clamped.
        timing = reqtrace.attribute(
            arrived_at=10.0,
            admitted_at=10.0,
            started_at=10.0,
            finished_at=11.0,
            iterations_s=[5.0],
            reply_serialize_s=0.0,
        )
        assert timing.unattributed_s < 0.0
        problems = timing.conservation_problems()
        assert any("unattributed" in p and "negative" in p for p in problems)
        # The identity itself still holds: unattributed is the remainder.
        assert not any("does not conserve" in p for p in problems)

    def test_hand_built_timing_that_lies_fails_conservation(self) -> None:
        timing = reqtrace.RequestTiming(
            end_to_end_s=10.0,
            admission_s=1.0,
            queue_wait_s=1.0,
            iterations_s=(1.0,),
            reply_serialize_s=1.0,
            unattributed_s=1.0,  # sums to 5, claims 10
        )
        assert any(
            "does not conserve" in p for p in timing.conservation_problems()
        )


class TestWireCodec:
    def test_round_trip(self) -> None:
        timing = reqtrace.attribute(
            arrived_at=0.0,
            admitted_at=0.5,
            started_at=1.0,
            finished_at=4.0,
            iterations_s=[1.0, 0.5],
            reply_serialize_s=0.125,
        )
        assert reqtrace.RequestTiming.from_wire(timing.to_wire()) == timing

    def test_newer_version_drops_to_none(self) -> None:
        payload = {"v": reqtrace.TIMING_WIRE_VERSION + 1, "end_to_end_s": 1.0}
        assert reqtrace.timing_from_wire(payload) is None
        assert reqtrace.timing_from_wire(None) is None

    @pytest.mark.parametrize(
        "payload",
        [
            {"v": 1},  # missing every field
            {"v": 1, "end_to_end_s": "fast"},  # wrong type
            {
                "v": 1,
                "end_to_end_s": 1.0,
                "admission_s": 0.0,
                "queue_wait_s": 0.0,
                "iterations_s": 3,  # not a list
                "reply_serialize_s": 0.0,
                "unattributed_s": 0.0,
            },
            "not-an-object",
        ],
    )
    def test_malformed_current_version_raises(self, payload: object) -> None:
        with pytest.raises(ValueError):
            reqtrace.timing_from_wire(payload)

    def test_reply_carries_timing_over_the_wire(self) -> None:
        timing = reqtrace.attribute(
            arrived_at=0.0,
            admitted_at=0.0,
            started_at=0.0,
            finished_at=1.0,
            iterations_s=[1.0],
            reply_serialize_s=0.0,
        )
        reply = SearchReply(
            request_id="r1", status=STATUS_OK, value=1.0, timing=timing
        )
        decoded = SearchReply.from_wire(reply.to_wire())
        assert decoded.timing == timing
        # Pre-tracing replies (no block) still parse.
        bare = SearchReply(request_id="r2", status=STATUS_OK)
        assert SearchReply.from_wire(bare.to_wire()).timing is None


class TestTagCodec:
    def test_context_children_encode_the_path(self) -> None:
        ctx = reqtrace.TraceContext("req-7")
        assert ctx.tag == "req-7/root"
        child = ctx.child("d3")
        assert child.tag == "req-7/root.d3"
        assert child.child("w0").span_id == "root.d3.w0"

    def test_span_name_tag_round_trips(self) -> None:
        name = live.tag_span_name("eval", reqtrace.span_tag("r1", "root.d2"))
        assert live.split_span_name(name) == ("eval", "r1/root.d2")
        assert live.split_span_name("eval") == ("eval", None)

    def test_double_tagging_rejected(self) -> None:
        tagged = live.tag_span_name("eval", "r1/root")
        with pytest.raises(ValueError):
            live.tag_span_name(tagged, "r2/root")


# ---------------------------------------------------------------------------
# Scheduler integration on an injected clock.
# ---------------------------------------------------------------------------


def run_scheduler(
    requests: list[SearchRequest],
    *,
    arrived_offsets: Optional[list[float]] = None,
    stall_overrun_factor: float = 0.0,
    stall_sink=None,
) -> tuple[RequestScheduler, list[SearchReply], list[reqtrace.RequestTrace]]:
    clock = FakeClock()
    traces: list[reqtrace.RequestTrace] = []
    scheduler = RequestScheduler(
        FakeEngine(clock),
        max_concurrency=1,
        queue_limit=8,
        clock=clock,
        trace_sink=traces.append,
        stall_overrun_factor=stall_overrun_factor,
        stall_sink=stall_sink,
    )

    async def scenario() -> list[SearchReply]:
        futures = []
        for i, request in enumerate(requests):
            arrived = None
            if arrived_offsets is not None:
                arrived = clock() - arrived_offsets[i]
            futures.append(scheduler.submit_nowait(request, arrived_at=arrived))
        await scheduler.drain()
        return [await f for f in futures]

    replies = asyncio.run(scenario())
    return scheduler, replies, traces


class TestSchedulerTiming:
    def test_every_executed_request_gets_conserved_timing(self) -> None:
        scheduler, replies, traces = run_scheduler(
            [make_request(i, max_depth=2) for i in range(3)]
        )
        assert len(traces) == 3
        for reply in replies:
            assert reply.timing is not None
            assert reply.timing.conservation_problems() == []
            assert len(reply.timing.iterations_s) == 2
            assert reply.timing.iterations_total_s == pytest.approx(
                2 * ITERATION_COST
            )
        # Later submissions waited for the single slot: queue_wait grows.
        assert replies[2].timing is not None and replies[0].timing is not None
        assert (
            replies[2].timing.queue_wait_s > replies[0].timing.queue_wait_s
        )

    def test_admission_stage_spans_arrival_to_admission(self) -> None:
        _, replies, traces = run_scheduler(
            [make_request(0)], arrived_offsets=[0.125]
        )
        timing = replies[0].timing
        assert timing is not None
        assert timing.admission_s == pytest.approx(0.125)
        assert traces[0].arrived_at == pytest.approx(-0.125)
        assert traces[0].finished_at == pytest.approx(
            traces[0].arrived_at + timing.end_to_end_s
        )

    def test_trace_sink_gets_bounds_and_identity(self) -> None:
        _, _, traces = run_scheduler(
            [make_request(0, max_depth=3, span_id="c9")]
        )
        trace = traces[0]
        assert trace.request_id == "r0000"
        assert trace.span_id == "c9"
        assert trace.tag == "r0000/c9"
        assert len(trace.iteration_bounds) == 3
        for start, end in trace.iteration_bounds:
            assert end - start == pytest.approx(ITERATION_COST)

    def test_shed_requests_have_no_timing(self) -> None:
        scheduler, replies, traces = run_scheduler(
            [make_request(i, max_depth=2) for i in range(12)]
        )
        shed = [r for r in replies if r.status != STATUS_OK]
        assert shed, "queue_limit=8 + slot=1 must shed from a 12-batch"
        assert all(r.timing is None for r in shed)
        assert len(traces) == len(replies) - len(shed)

    def test_queue_depth_sampled_on_completion_decays_to_zero(self) -> None:
        # Satellite 1: without completion-side samples the depth series
        # ends at its high-water mark; the series must return to zero.
        scheduler, _, _ = run_scheduler(
            [make_request(i, max_depth=1) for i in range(6)]
        )
        series = scheduler.metrics.registry.timeseries("serve.queue.depth")
        depths = [value for _, value in series.samples]
        assert max(depths) > 0.0
        assert depths[-1] == 0.0
        assert scheduler.conservation_problems() == []


class TestStallWatchdog:
    def test_fires_once_past_the_overrun_threshold(self) -> None:
        stalls: list[tuple[str, float]] = []
        _, replies, _ = run_scheduler(
            [make_request(0, max_depth=4, deadline_s=10.0)],
            stall_overrun_factor=0.2,  # threshold: 2.0 clock units
            stall_sink=lambda request, elapsed: stalls.append(
                (request.request_id, elapsed)
            ),
        )
        assert [rid for rid, _ in stalls] == ["r0000"]  # fired exactly once
        assert stalls[0][1] >= 10.0 * 0.2
        assert replies[0].status == STATUS_OK  # watchdog observes, not kills

    def test_sink_errors_counted_not_raised(self) -> None:
        def broken(request: SearchRequest, elapsed: float) -> None:
            raise RuntimeError("flight disk full")

        scheduler, replies, _ = run_scheduler(
            [make_request(0, max_depth=4, deadline_s=10.0)],
            stall_overrun_factor=0.2,
            stall_sink=broken,
        )
        assert replies[0].status == STATUS_OK
        collected = scheduler.metrics.collect()
        assert collected.get("serve.flight.errors") == 1


# ---------------------------------------------------------------------------
# SLO machinery and histogram rendering.
# ---------------------------------------------------------------------------


class TestSLO:
    def test_burn_rate_math(self) -> None:
        policy = reqtrace.SLOPolicy(targets=((0, 1.0),), objective=0.99)
        assert policy.error_budget == pytest.approx(0.01)
        assert policy.burn_rate(0, 0) == 0.0
        assert policy.burn_rate(99, 1) == pytest.approx(1.0)  # exactly on budget
        assert policy.burn_rate(90, 10) == pytest.approx(10.0)
        assert policy.target_for(0) == 1.0
        assert policy.target_for(7) is None

    def test_policy_validation(self) -> None:
        with pytest.raises(ValueError):
            reqtrace.SLOPolicy(targets=((0, 1.0),), objective=1.0)
        with pytest.raises(ValueError):
            reqtrace.SLOPolicy(targets=((0, 0.0),))

    def test_observe_latency_updates_counters_and_burn_rate(self) -> None:
        metrics = ServeMetrics(
            slo=reqtrace.SLOPolicy(targets=((PRIORITY_HIGH, 0.5),), objective=0.9)
        )
        for latency in (0.1, 0.2, 0.3, 0.9):  # 3 good, 1 bad
            metrics.observe_latency(PRIORITY_HIGH, latency)
        collected = metrics.collect()
        p = f"serve.slo.p{PRIORITY_HIGH}"
        assert collected[f"{p}.good"] == 3
        assert collected[f"{p}.bad"] == 1
        assert collected[f"{p}.target_seconds"] == 0.5
        assert collected[f"{p}.burn_rate"] == pytest.approx((1 / 4) / 0.1)

    def test_unknown_priority_feeds_histogram_only(self) -> None:
        metrics = ServeMetrics(
            slo=reqtrace.SLOPolicy(targets=((PRIORITY_HIGH, 0.5),))
        )
        metrics.observe_latency(PRIORITY_NORMAL, 0.2)
        collected = metrics.collect()
        assert f"serve.slo.p{PRIORITY_NORMAL}.good" not in collected
        histogram = collected[f"serve.latency_seconds.p{PRIORITY_NORMAL}"]
        assert isinstance(histogram, dict) and histogram["count"] == 1.0

    def test_bucketed_histogram_renders_prometheus_family(self) -> None:
        registry = MetricsRegistry()
        hist = registry.histogram("serve.latency_seconds.p1", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["le:0.1"] == 1.0
        assert summary["le:1"] == 2.0  # cumulative
        text = render_prometheus(registry.collect())
        assert "# TYPE repro_serve_latency_seconds_p1 histogram" in text
        assert 'repro_serve_latency_seconds_p1_bucket{le="0.1"} 1' in text
        assert 'repro_serve_latency_seconds_p1_bucket{le="1"} 2' in text
        assert 'repro_serve_latency_seconds_p1_bucket{le="+Inf"} 3' in text
        assert "repro_serve_latency_seconds_p1_count 3" in text

    def test_slo_bounds_are_ascending(self) -> None:
        assert list(SLO_LATENCY_BOUNDS) == sorted(SLO_LATENCY_BOUNDS)
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", bounds=(1.0, 0.5))


# ---------------------------------------------------------------------------
# Flight recorder.
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def _recorder(self, tmp_path, **kwargs) -> reqtrace.FlightRecorder:
        kwargs.setdefault("overrun_factor", 2.0)
        return reqtrace.FlightRecorder(tmp_path / "flights", **kwargs)

    def _record(self, recorder, request_id: str):
        return recorder.record(
            request_id=request_id,
            span_id="root",
            deadline_s=1.0,
            elapsed_s=2.5,
            service_spans=[("request", "request@x/root", 0.0, 2.5)],
            worker_spans=[live.WorkerSpan(0, "task", "eval@x/root.d1", 0.5, 1.0)],
            pids={0: 4242},
        )

    def test_writes_schema_and_spans(self, tmp_path) -> None:
        recorder = self._recorder(tmp_path)
        path = self._record(recorder, "req-1")
        assert path is not None
        payload = json.loads(path.read_text())
        assert payload["flight_schema"] == reqtrace.FlightRecorder.SCHEMA
        assert payload["elapsed_s"] == 2.5
        assert payload["service_spans"][0]["name"] == "request@x/root"
        assert payload["worker_spans"][0]["os_pid"] == 4242

    def test_hostile_request_id_is_sanitized(self, tmp_path) -> None:
        recorder = self._recorder(tmp_path)
        path = self._record(recorder, "../../etc/passwd")
        assert path is not None
        # Separators are replaced, so the file cannot escape the flight
        # directory no matter what the client named its request.
        assert "/" not in path.name and "\\" not in path.name
        assert path.resolve().parent == recorder.directory.resolve()

    def test_dedupes_per_request_and_bounds_files(self, tmp_path) -> None:
        recorder = self._recorder(tmp_path, limit=2)
        assert self._record(recorder, "a") is not None
        assert self._record(recorder, "a") is None  # deduped
        assert self._record(recorder, "b") is not None
        assert self._record(recorder, "c") is None  # over the limit
        assert recorder.suppressed == 2
        assert len(list(recorder.directory.glob("flight_*.json"))) == 2

    def test_config_requires_flight_dir_with_factor(self) -> None:
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            ServeConfig(stall_overrun_factor=2.0, flight_dir=None)
        with pytest.raises(ValueError):
            reqtrace.FlightRecorder("x", overrun_factor=0.0)


# ---------------------------------------------------------------------------
# Perfetto export.
# ---------------------------------------------------------------------------


class TestServiceTraceExport:
    def _trace(self) -> reqtrace.RequestTrace:
        timing = reqtrace.attribute(
            arrived_at=50.0,
            admitted_at=50.5,
            started_at=51.0,
            finished_at=55.0,
            iterations_s=[1.0, 2.0],
            reply_serialize_s=0.5,
        )
        return reqtrace.RequestTrace("r1", "c1", 1, "ok", 50.0, timing)

    def test_stage_lane_tiles_exactly_arrival_to_finish(self) -> None:
        trace = self._trace()
        payload = json.loads(export.render_service_trace([trace]))
        slices = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 0
        ]
        names = [e["name"] for e in slices]
        assert names == [
            "admission",
            "queue_wait",
            "iteration d1",
            "iteration d2",
            "reply_serialize",
            "unattributed",
        ]
        # End-to-end tiling: each slice starts where the last ended, and
        # the lane spans exactly [arrived_at, finished_at] (rebased to 0).
        cursor = 0.0
        for event in slices:
            assert event["ts"] == pytest.approx(cursor, abs=1e-6)
            cursor += event["dur"]
        assert cursor == pytest.approx(trace.timing.end_to_end_s * 1e6)

    def test_worker_spans_threaded_into_request_track(self, tmp_path) -> None:
        trace = self._trace()
        spans = {
            "r1": [
                live.WorkerSpan(0, "task", "eval@r1/c1.d1", 51.2, 51.8),
                live.WorkerSpan(1, "task", "eval@r1/c1.d2", 52.0, 53.5),
            ]
        }
        path = export.write_service_trace(
            tmp_path / "svc.trace.json",
            [trace],
            worker_spans=spans,
            span_pids={0: 111, 1: 222},
        )
        payload = json.loads(path.read_text())
        workers = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e.get("tid", 0) >= 1
        ]
        assert {e["args"]["os_pid"] for e in workers} == {111, 222}
        assert {e["args"]["tag"] for e in workers} == {"r1/c1.d1", "r1/c1.d2"}
        assert all(e["name"] == "eval" for e in workers)
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "engine worker 0 (os pid 111)" in names


# ---------------------------------------------------------------------------
# Traffic decomposition and the ledger latency block.
# ---------------------------------------------------------------------------


def _reply_with(end_to_end: float, queue_wait: float) -> SearchReply:
    timing = reqtrace.attribute(
        arrived_at=0.0,
        admitted_at=0.0,
        started_at=queue_wait,
        finished_at=end_to_end,
        iterations_s=[end_to_end - queue_wait],
        reply_serialize_s=0.0,
    )
    return SearchReply(request_id="x", status=STATUS_OK, timing=timing)


class TestTrafficDecomposition:
    def test_stage_samples_skip_untimed_replies(self) -> None:
        replies = [
            _reply_with(1.0, 0.25),
            SearchReply(request_id="shed", status="shed"),
        ]
        samples = stage_samples(replies)
        assert len(samples["end_to_end"]) == 1
        assert samples["queue_wait"] == [0.25]

    def test_stage_stats_percentiles(self) -> None:
        replies = [_reply_with(float(i), 0.0) for i in range(1, 101)]
        stats = stage_stats(stage_samples(replies))
        assert stats["end_to_end"]["p50_s"] == 50.0
        assert stats["end_to_end"]["p99_s"] == 99.0
        assert stats["end_to_end"]["mean_s"] == pytest.approx(50.5)

    def test_render_flags_degenerate_small_n(self) -> None:
        table = render_decomposition(
            [_reply_with(1.0, 0.5), _reply_with(2.0, 0.5)], "t"
        )
        assert "decomposed requests: 2" in table
        assert "degenerate" in table
        assert "dominant tail stage" in table
        big = render_decomposition(
            [_reply_with(float(i), 0.0) for i in range(1, 10)], "t"
        )
        assert "degenerate" not in big

    def test_latency_fields_feed_a_valid_ledger_block(self) -> None:
        block = ledger.latency_block(
            **latency_fields([_reply_with(1.0, 0.25)])  # type: ignore[arg-type]
        )
        assert block["samples"] == 1
        assert "unattributed" in block["stages"]
        assert "end_to_end" in block["stages"]


@pytest.fixture(scope="module")
def sim_snapshot():
    """One tiny deterministic sim run as record scaffolding."""
    from repro.core.er_parallel import ERConfig, parallel_er
    from repro.games.base import SearchProblem
    from repro.games.random_tree import RandomGameTree
    from repro.obs import observing
    from repro.obs.snapshot import snapshot_from_sim

    problem = SearchProblem(RandomGameTree(3, 4, seed=11), depth=4)
    with observing() as bus:
        result = parallel_er(problem, 2, config=ERConfig(serial_depth=2))
    return snapshot_from_sim(result, workload="t", bus=bus)


class TestLedgerLatency:
    @pytest.fixture(autouse=True)
    def _snap(self, sim_snapshot):
        self._snapshot = sim_snapshot

    def _snap_record(self, **kwargs):
        return ledger.make_record(
            self._snapshot, workload="t", git_sha="cafe", **kwargs
        )

    def test_validate_requires_total_and_remainder(self) -> None:
        row = {"mean_s": 0.1, "p50_s": 0.1, "p95_s": 0.1, "p99_s": 0.1}
        good = self._snap_record(
            latency={"samples": 4, "stages": {"end_to_end": row, "unattributed": row}}
        )
        assert ledger.validate_record(good) == []
        hidden = self._snap_record(
            latency={"samples": 4, "stages": {"end_to_end": row}}
        )
        assert any("unattributed" in p for p in ledger.validate_record(hidden))
        negative = self._snap_record(
            latency={
                "samples": 4,
                "stages": {"end_to_end": row, "unattributed": {**row, "p99_s": -1.0}},
            }
        )
        assert any("p99_s" in p for p in ledger.validate_record(negative))

    def test_compare_flags_single_stage_regression(self) -> None:
        def block(queue_p99: float):
            row = {"mean_s": 0.1, "p50_s": 0.1, "p95_s": 0.1, "p99_s": 0.1}
            return {
                "samples": 10,
                "stages": {
                    "end_to_end": row,
                    "unattributed": row,
                    "queue_wait": {**row, "p99_s": queue_p99},
                },
            }

        base = self._snap_record(latency=block(0.010))
        worse = self._snap_record(latency=block(0.030))
        report = ledger.compare_records(base, worse, tolerance=0.10)
        assert any("queue_wait" in r for r in report.regressions)
        better = ledger.compare_records(worse, base, tolerance=0.10)
        assert any("queue_wait" in i for i in better.improvements)

    def test_compare_skips_sub_millisecond_noise(self) -> None:
        def block(p99: float):
            row = {"mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0, "p99_s": p99}
            return {
                "samples": 10,
                "stages": {"end_to_end": row, "unattributed": row},
            }

        report = ledger.compare_records(
            self._snap_record(latency=block(0.0002)),
            self._snap_record(latency=block(0.0009)),  # 4.5x, but microseconds
            tolerance=0.10,
        )
        assert report.regressions == []

    def test_compare_notes_missing_block(self) -> None:
        report = ledger.compare_records(
            self._snap_record(),
            self._snap_record(latency={"samples": 0, "stages": {}}),
        )
        assert any("latency" in n for n in report.notes)


# ---------------------------------------------------------------------------
# End to end: a real service, trace mode full.
# ---------------------------------------------------------------------------


class TestServiceEndToEnd:
    def test_full_trace_propagates_across_processes(self) -> None:
        config = ServeConfig(
            n_workers=1, max_concurrency=2, trace_mode=live.TRACE_FULL
        )

        async def scenario():
            async with SearchService(config) as service:
                requests = [
                    SearchRequest(
                        request_id=f"e2e{i}",
                        workload="R1",
                        max_depth=2,
                        span_id=f"c{i}",
                    )
                    for i in range(3)
                ]
                replies = await asyncio.gather(
                    *(service.handle(r) for r in requests)
                )
                assert service.pool is not None
                spans = service.pool.request_spans("e2e1")
                stored = service.traces.traces()
                snapshot = service.stats_snapshot()
            return replies, spans, stored, snapshot

        replies, spans, stored, snapshot = asyncio.run(scenario())
        for reply in replies:
            assert reply.status == STATUS_OK
            assert reply.timing is not None
            assert reply.timing.conservation_problems() == []
        # Worker spans from another OS process carry this request's tag.
        assert spans, "full trace mode must collect tagged worker spans"
        for span in spans:
            base, tag = live.split_span_name(span.name)
            assert tag is not None and tag.startswith("e2e1/c1")
        assert {t.request_id for t in stored} == {"e2e0", "e2e1", "e2e2"}
        assert snapshot["traces_stored"] == 3

    def test_trace_off_attaches_timing_but_no_tags(self) -> None:
        async def scenario():
            async with SearchService(ServeConfig(n_workers=1)) as service:
                reply = await service.handle(
                    SearchRequest(request_id="plain", workload="R1", max_depth=2)
                )
                assert service.pool is not None
                spans = service.pool.merged_spans()
            return reply, spans

        reply, spans = asyncio.run(scenario())
        assert reply.timing is not None
        assert reply.timing.conservation_problems() == []
        assert spans == ()  # off mode: no span collection, no tags
