"""Unit tests for the discrete-event multiprocessor engine."""

import pytest

from repro.errors import DeadlockError, SimulationError, WorkerProtocolError
from repro.sim import (
    Acquire,
    Compute,
    Engine,
    Release,
    SimLock,
    WaitWork,
    WorkSignal,
    run_workers,
)


class TestCompute:
    def test_single_worker_time(self):
        def worker():
            yield Compute(5.0)
            yield Compute(7.0)

        report = run_workers([worker()])
        assert report.makespan == 12.0
        assert report.processors[0].busy == 12.0

    def test_parallel_workers_overlap(self):
        def worker(units):
            yield Compute(units)

        report = run_workers([worker(10.0), worker(4.0)])
        assert report.makespan == 10.0
        assert report.total_busy == 14.0

    def test_zero_cost_ok(self):
        def worker():
            yield Compute(0.0)

        assert run_workers([worker()]).makespan == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)


class TestLocks:
    def test_contention_serializes(self):
        lock = SimLock("l")

        def worker():
            yield Acquire(lock)
            yield Compute(10.0)
            yield Release(lock)

        report = run_workers([worker(), worker()])
        assert report.makespan == 20.0
        assert report.total_lock_wait == 10.0

    def test_fifo_grant_order(self):
        lock = SimLock("l")
        order = []

        def worker(name, delay):
            yield Compute(delay)
            yield Acquire(lock)
            order.append(name)
            yield Compute(5.0)
            yield Release(lock)

        run_workers([worker("a", 0.0), worker("b", 1.0), worker("c", 2.0)])
        assert order == ["a", "b", "c"]

    def test_uncontended_lock_is_free(self):
        lock = SimLock("l")

        def worker():
            yield Acquire(lock)
            yield Compute(3.0)
            yield Release(lock)

        report = run_workers([worker()])
        assert report.makespan == 3.0
        assert report.total_lock_wait == 0.0

    def test_reacquire_rejected(self):
        lock = SimLock("l")

        def worker():
            yield Acquire(lock)
            yield Acquire(lock)

        with pytest.raises(WorkerProtocolError):
            run_workers([worker()])

    def test_release_foreign_lock_rejected(self):
        lock = SimLock("l")

        def worker():
            yield Release(lock)

        with pytest.raises(WorkerProtocolError):
            run_workers([worker()])


class TestWaitWork:
    def test_signal_wakes_waiter(self):
        signal = WorkSignal()
        log = []

        def waiter():
            version = signal.version
            yield WaitWork(signal, version)
            log.append("woke")

        def producer():
            yield Compute(5.0)
            signal.notify_all()

        report = run_workers([waiter(), producer()])
        assert log == ["woke"]
        assert report.processors[0].starve_wait == 5.0

    def test_lost_wakeup_prevented_by_version(self):
        """If notify happens between the check and the wait, the waiter
        must resume immediately instead of sleeping forever."""
        signal = WorkSignal()

        def racer():
            version = signal.version
            signal.notify_all()  # notify before the wait lands
            yield WaitWork(signal, version)

        report = run_workers([racer()])
        assert report.makespan == 0.0

    def test_unnotified_waiter_deadlocks(self):
        signal = WorkSignal()

        def waiter():
            yield WaitWork(signal, signal.version)

        with pytest.raises(DeadlockError):
            run_workers([waiter()])


class TestEngineDiscipline:
    def test_single_use(self):
        def worker():
            yield Compute(1.0)

        engine = Engine([worker()])
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_requires_workers(self):
        with pytest.raises(SimulationError):
            Engine([])

    def test_event_budget(self):
        def spinner():
            while True:
                yield Compute(0.0)

        with pytest.raises(SimulationError):
            run_workers([spinner()], max_events=100)

    def test_determinism(self):
        lock = SimLock("l")

        def make_workers():
            lock = SimLock("l")

            def worker(units):
                yield Acquire(lock)
                yield Compute(units)
                yield Release(lock)
                yield Compute(units * 2)

            return [worker(3.0), worker(5.0), worker(1.0)]

        a = run_workers(make_workers())
        b = run_workers(make_workers())
        assert a.makespan == b.makespan
        assert [p.busy for p in a.processors] == [p.busy for p in b.processors]


class TestReportMath:
    def test_utilization(self):
        def worker(units):
            yield Compute(units)

        report = run_workers([worker(10.0), worker(5.0)])
        assert report.utilization == pytest.approx(15.0 / 20.0)

    def test_starvation_includes_tail_idle(self):
        def worker(units):
            yield Compute(units)

        report = run_workers([worker(10.0), worker(2.0)])
        # Worker 2 idles for 8 time units after finishing.
        assert report.starvation_fraction() == pytest.approx(8.0 / 20.0)
