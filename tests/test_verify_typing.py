"""Strict typing gate, runnable wherever mypy is installed.

The container this repo grows in does not ship mypy, so the gate is
skipped locally; the CI ``verify`` job installs mypy and runs both this
test and ``mypy --strict src/repro`` directly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_mypy_strict_is_clean() -> None:
    stdout, stderr, status = mypy_api.run(
        [
            "--strict",
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            str(REPO_ROOT / "src" / "repro"),
        ]
    )
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
