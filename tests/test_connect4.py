"""Unit tests for the Connect Four bitboard engine."""

import pytest

from repro.errors import GameError, IllegalMoveError
from repro.games.base import SearchProblem
from repro.games.connect4 import ConnectFour
from repro.search.alphabeta import alphabeta


def play_moves(game: ConnectFour, columns):
    position = game.root()
    for column in columns:
        position = game.play(position, column)
    return position


class TestRules:
    def test_root_has_all_columns(self):
        game = ConnectFour()
        assert game.legal_columns(game.root()) == list(range(7))

    def test_column_fills_up(self):
        game = ConnectFour(width=7, height=6)
        position = play_moves(game, [0] * 6)
        assert 0 not in game.legal_columns(position)
        with pytest.raises(IllegalMoveError):
            game.play(position, 0)

    def test_out_of_range(self):
        game = ConnectFour()
        with pytest.raises(IllegalMoveError):
            game.play(game.root(), 7)

    def test_vertical_win(self):
        game = ConnectFour()
        # X: 0,0,0,0 with O interleaving elsewhere.
        position = play_moves(game, [0, 1, 0, 1, 0, 1, 0])
        assert game.opponent_just_won(position)
        assert game.children(position) == ()

    def test_horizontal_win(self):
        game = ConnectFour()
        position = play_moves(game, [0, 0, 1, 1, 2, 2, 3])
        assert game.opponent_just_won(position)

    def test_diagonal_win(self):
        game = ConnectFour()
        # Classic staircase for X: (0),(1),(1),(2),(2),(3),(2),(3),(3),x,(3)
        moves = [0, 1, 1, 2, 2, 3, 2, 3, 3, 6, 3]
        position = play_moves(game, moves)
        assert game.opponent_just_won(position)

    def test_no_false_wins_early(self):
        game = ConnectFour()
        position = play_moves(game, [0, 1, 2, 3, 4, 5])
        assert not game.opponent_just_won(position)
        assert len(game.children(position)) == 7

    def test_draw_on_tiny_board(self):
        game = ConnectFour(width=4, height=2)
        # Fill all 8 cells without 4 in a row: columns 0,1 by X... verify via search below.
        # Here just check the mask arithmetic: after 8 legal moves board is full.
        position = game.root()
        seen = 0
        while game.legal_columns(position):
            position = game.play(position, game.legal_columns(position)[0])
            seen += 1
            if game.opponent_just_won(position):
                break
        assert seen <= 8


class TestEvaluation:
    def test_loss_scored_heavily(self):
        game = ConnectFour()
        position = play_moves(game, [0, 1, 0, 1, 0, 1, 0])
        assert game.evaluate(position) < -9000

    def test_search_finds_win_in_one(self):
        game = ConnectFour()
        # X has three in a row at the bottom and it is X's move.
        base = play_moves(game, [0, 6, 1, 6, 2, 5])

        class Rooted:
            def root(self):
                return base

            def children(self, p):
                return game.children(p)

            def evaluate(self, p):
                return game.evaluate(p)

        problem = SearchProblem(Rooted(), depth=2)
        value = alphabeta(problem).value
        assert value > 9000  # mover wins

    def test_render_shows_stones(self):
        game = ConnectFour()
        text = game.render(play_moves(game, [3, 3]))
        assert "X" in text and "O" in text


class TestValidation:
    def test_rejects_tiny_board(self):
        with pytest.raises(GameError):
            ConnectFour(width=3, height=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(GameError):
            ConnectFour(width=0, height=6)
