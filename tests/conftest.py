"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.games.base import SearchProblem
from repro.games.explicit import ExplicitTree
from repro.games.random_tree import RandomGameTree
from repro.search.negamax import negamax

# One moderate default profile: deterministic, no deadline (search code has
# highly variable per-example cost), modest example counts for CI speed.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


def explicit_problem(spec) -> SearchProblem:
    """An ExplicitTree search problem covering its full height."""
    game = ExplicitTree(spec)
    return SearchProblem(game=game, depth=game.height)


def random_problem(degree: int, height: int, seed: int) -> SearchProblem:
    return SearchProblem(RandomGameTree(degree, height, seed=seed), depth=height)


def ground_truth(problem: SearchProblem) -> float:
    return negamax(problem).value


@pytest.fixture
def small_random_problems() -> list[SearchProblem]:
    """A bundle of small trees with varied degree/height/seed."""
    problems = []
    for degree, height in ((2, 4), (3, 4), (4, 3), (2, 6), (5, 3)):
        for seed in (0, 1):
            problems.append(random_problem(degree, height, seed))
    return problems
