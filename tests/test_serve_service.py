"""Service-level tests: the TCP wire, lifecycle, and pool integration.

Covers what the scheduler battery (fake engine) and the parity battery
(values) do not: NDJSON framing and malformed-input replies, pipelined
requests over one connection, the stats and shutdown ops, graceful
drain over the network, anytime deadlines against the real pool, and
the persistent-pool plumbing through ``multiproc_er``/``GameEngine``.
"""

from __future__ import annotations

import asyncio
import urllib.request

import pytest

from repro.engine import EngineConfig, GameEngine
from repro.errors import SearchError, ServeError
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree
from repro.parallel.multiproc import multiproc_er
from repro.search.alphabeta import alphabeta
from repro.serve import (
    STATUS_ERROR,
    STATUS_OK,
    SearchReply,
    SearchRequest,
    SearchService,
    ServeConfig,
)
from repro.serve.api import decode_line, encode_line
from repro.serve.client import ServiceClient
from repro.serve.pool import EnginePool


def run(coro):
    return asyncio.run(coro)


# -- wire protocol ----------------------------------------------------------


class TestWireFormat:
    def test_request_roundtrip(self) -> None:
        request = SearchRequest(
            request_id="x1",
            workload="R3",
            path=(0, 2),
            max_depth=4,
            deadline_s=1.5,
            priority=2,
        )
        assert SearchRequest.from_wire(request.to_wire()) == request

    def test_reply_roundtrip(self) -> None:
        reply = SearchReply(
            request_id="x1",
            status=STATUS_OK,
            move_index=3,
            value=-12.0,
            depth_reached=2,
            per_move_values=(1.0, -12.0),
            latency_s=0.25,
            queue_wait_s=0.1,
            anytime=True,
        )
        assert SearchReply.from_wire(reply.to_wire()) == reply

    def test_decode_rejects_garbage(self) -> None:
        with pytest.raises(ServeError):
            decode_line(b"not json\n")
        with pytest.raises(ServeError):
            decode_line(b"[1, 2]\n")

    def test_from_wire_rejects_bad_fields(self) -> None:
        base = SearchRequest(request_id="a", workload="w").to_wire()
        for corrupt in (
            {**base, "path": [0, -1]},
            {**base, "path": [True]},
            {**base, "max_depth": "deep"},
            {**base, "priority": 7},
            {**base, "request_id": ""},
        ):
            with pytest.raises(ServeError):
                SearchRequest.from_wire(corrupt)

    def test_encode_line_is_single_framed_line(self) -> None:
        line = encode_line({"op": "stats"})
        assert line.endswith(b"\n") and line.count(b"\n") == 1


# -- TCP service ------------------------------------------------------------


def small_config(**overrides) -> ServeConfig:
    defaults = dict(n_workers=2, max_concurrency=2, queue_limit=8)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestServiceOverTCP:
    def test_pipelined_searches_and_stats(self) -> None:
        async def scenario():
            async with SearchService(small_config()) as service:
                host, port = service.address
                async with ServiceClient(host, port) as client:
                    requests = [
                        SearchRequest(request_id=f"q{i}", workload="R3", max_depth=2)
                        for i in range(5)
                    ]
                    replies = await asyncio.gather(
                        *(client.search(r) for r in requests)
                    )
                    stats = await client.stats()
                return replies, stats

        replies, stats = run(scenario())
        assert [r.status for r in replies] == [STATUS_OK] * 5
        assert len({r.request_id for r in replies}) == 5
        assert stats["submitted"] == 5 and stats["completed"] == 5
        assert stats["in_flight"] == 0

    def test_malformed_lines_get_error_replies(self) -> None:
        async def scenario():
            async with SearchService(small_config()) as service:
                host, port = service.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                writer.write(encode_line({"op": "mystery"}))
                writer.write(encode_line({"op": "search", "request_id": "bad"}))
                await writer.drain()
                lines = [await reader.readline() for _ in range(3)]
                writer.close()
                await writer.wait_closed()
            return [decode_line(line) for line in lines]

        replies = run(scenario())
        assert all(r["status"] == STATUS_ERROR for r in replies)
        assert replies[2]["request_id"] == "bad"  # echoed when parseable

    def test_unknown_workload_and_over_limit_depth_rejected_pre_admission(self) -> None:
        async def scenario():
            async with SearchService(small_config(max_depth_limit=3)) as service:
                bad_workload = await service.handle(
                    SearchRequest(request_id="a", workload="NOPE")
                )
                too_deep = await service.handle(
                    SearchRequest(request_id="b", workload="R3", max_depth=9)
                )
                assert service.scheduler is not None
                return bad_workload, too_deep, dict(service.scheduler.counters)

        bad_workload, too_deep, counters = run(scenario())
        assert bad_workload.status == STATUS_ERROR
        assert "unknown workload" in bad_workload.detail
        assert too_deep.status == STATUS_ERROR
        assert "exceeds the service limit" in too_deep.detail
        assert counters["submitted"] == 0, "invalid requests must not be admitted"

    def test_deadline_yields_anytime_move(self) -> None:
        async def scenario():
            async with SearchService(small_config()) as service:
                return await service.handle(
                    SearchRequest(
                        request_id="rush",
                        workload="R1",
                        max_depth=6,
                        deadline_s=0.0,  # expires immediately: one iteration only
                    )
                )

        reply = run(scenario())
        assert reply.status == STATUS_OK
        assert reply.anytime is True
        assert reply.depth_reached == 1
        assert reply.move_index >= 0

    def test_shutdown_op_drains_and_stops(self) -> None:
        async def scenario():
            service = await SearchService(small_config()).start()
            host, port = service.address
            async with ServiceClient(host, port) as client:
                reply = await client.search(
                    SearchRequest(request_id="last", workload="R3", max_depth=2)
                )
                await client.shutdown_server()
            await service.serve_until_shutdown()
            assert service.scheduler is not None
            problems = service.scheduler.conservation_problems()
            return reply, problems, service.pool, service.final_counters

        reply, problems, pool, final = run(scenario())
        assert reply.status == STATUS_OK
        assert problems == []
        assert pool is not None and pool.closed
        assert final.get("tasks_completed", 0) > 0

    def test_requests_after_shutdown_are_shed_with_reason(self) -> None:
        async def scenario():
            service = await SearchService(small_config()).start()
            await service.shutdown()
            assert service.scheduler is not None
            return await service.scheduler.submit(
                SearchRequest(request_id="late", workload="R3")
            )

        reply = run(scenario())
        assert reply.status == "shed"
        assert reply.detail == "shutdown"

    def test_metrics_endpoint_scrapes_while_serving(self) -> None:
        async def scenario():
            async with SearchService(small_config(metrics_port=0)) as service:
                await service.handle(
                    SearchRequest(request_id="m", workload="R3", max_depth=2)
                )
                url = service.metrics_url
                assert url is not None
                text = await asyncio.to_thread(
                    lambda: urllib.request.urlopen(url, timeout=5).read().decode()
                )
            return text

        text = run(scenario())
        assert "repro_serve_requests_completed 1" in text
        assert "repro_serve_latency_seconds_count 1" in text


# -- persistent pool through the classic entry points -----------------------


class TestPersistentPoolPlumbing:
    def test_multiproc_er_reuses_pool_and_matches_oracle(self) -> None:
        problem = SearchProblem(RandomGameTree(3, 4, seed=7), depth=4)
        oracle = alphabeta(problem).value
        with EnginePool(2, tt_mode="shared") as pool:
            first = multiproc_er(problem, 2, pool=pool)
            second = multiproc_er(problem, 2, pool=pool)
            assert first.value == oracle
            assert second.value == oracle
            final = pool.close()
        assert final["tt_hits"] > 0, "second run should hit the warm table"

    def test_engine_config_pool_requires_multiproc_er(self) -> None:
        with EnginePool(1) as pool:
            with pytest.raises(SearchError, match="multiproc-er"):
                EngineConfig(algorithm="er", pool=pool)

    def test_multiproc_er_rejects_pool_executor_conflict(self) -> None:
        problem = SearchProblem(RandomGameTree(2, 3, seed=0), depth=3)
        with EnginePool(1) as pool:
            with pytest.raises(SearchError):
                multiproc_er(problem, 1, pool=pool, executor=pool.executor)

    def test_game_engine_on_shared_pool(self) -> None:
        game = RandomGameTree(3, 4, seed=11)
        serial = GameEngine(
            game, EngineConfig(algorithm="alphabeta", max_depth=3)
        ).choose(game.root())
        with EnginePool(2, tt_mode="shared") as pool:
            pooled = GameEngine(
                game,
                EngineConfig(
                    algorithm="multiproc-er",
                    n_processors=2,
                    max_depth=3,
                    pool=pool,
                ),
            ).choose(game.root())
        assert pooled.move_index == serial.move_index
        assert pooled.per_move_values == serial.per_move_values

    def test_closed_pool_refuses_work(self) -> None:
        pool = EnginePool(1)
        pool.close()
        problem = SearchProblem(RandomGameTree(2, 2, seed=0), depth=2)
        with pytest.raises(ServeError, match="closed"):
            pool.submit_eval(problem)

    def test_pool_close_is_idempotent(self) -> None:
        pool = EnginePool(1, tt_mode="shared")
        first = pool.close()
        second = pool.close()
        assert first == second