"""Tests for the experiment runners (figure regeneration machinery)."""

import pytest

from repro.analysis.experiments import (
    cached_curve,
    er_config_for,
    er_scaling_curve,
    format_efficiency_table,
    format_nodes_table,
    format_speedup_summary,
    serial_baselines,
)
from repro.games.random_tree import RandomGameTree
from repro.workloads.suite import TreeSpec


def tiny_spec(name="T1", degree=3, depth=4, serial=2, seed=3) -> TreeSpec:
    return TreeSpec(
        name=name,
        kind="random",
        make_game=lambda: RandomGameTree(degree, depth, seed=seed),
        search_depth=depth,
        serial_depth=serial,
        sort_below_root=0,
        description="tiny test tree",
    )


class TestSerialBaselines:
    def test_both_algorithms_agree(self):
        base = serial_baselines(tiny_spec())
        assert base.alphabeta.value == base.er.value
        assert base.best_time == min(base.alphabeta.cost, base.er.cost)
        assert base.best_name in ("alphabeta", "er")
        assert 0 < base.alphabeta_efficiency <= 1.0


class TestScalingCurve:
    def test_curve_points(self):
        curve = er_scaling_curve(tiny_spec(), processor_counts=(1, 2, 4))
        assert [p.n_processors for p in curve.points] == [1, 2, 4]
        for point in curve.points:
            assert point.sim_time > 0
            assert point.efficiency == pytest.approx(point.speedup / point.n_processors)
            assert point.nodes_generated > 0

    def test_parallel_faster_with_more_processors(self):
        curve = er_scaling_curve(tiny_spec(depth=5, serial=3), processor_counts=(1, 8))
        assert curve.points[1].sim_time < curve.points[0].sim_time

    def test_series_accessors(self):
        curve = er_scaling_curve(tiny_spec(), processor_counts=(1, 2))
        assert curve.efficiency_series()[0][0] == 1
        assert curve.nodes_series()[1][0] == 2

    def test_er_config_for_uses_spec_serial_depth(self):
        config = er_config_for(tiny_spec(serial=2))
        assert config.serial_depth == 2


class TestCaching:
    def test_cached_curve_identity(self):
        a = cached_curve("reduced", "R3", (1, 2))
        b = cached_curve("reduced", "R3", (1, 2))
        assert a is b

    def test_different_counts_different_entries(self):
        a = cached_curve("reduced", "R3", (1, 2))
        b = cached_curve("reduced", "R3", (1, 4))
        assert a is not b


class TestFormatting:
    def test_efficiency_table(self):
        curves = {"T1": er_scaling_curve(tiny_spec(), processor_counts=(1, 2))}
        text = format_efficiency_table(curves)
        assert "T1" in text and "P=1" in text and "P=2" in text

    def test_nodes_table(self):
        curves = {"T1": er_scaling_curve(tiny_spec(), processor_counts=(1,))}
        text = format_nodes_table(curves)
        assert "AB-nodes" in text and "serialER-nodes" in text

    def test_speedup_summary(self):
        curves = {"T1": er_scaling_curve(tiny_spec(), processor_counts=(1, 4))}
        text = format_speedup_summary(curves)
        assert "speedup" in text and "P=4" in text
