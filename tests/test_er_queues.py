"""Unit tests for the parallel ER priority queues."""

from repro.core.er_parallel import E_NODE, PNode
from repro.core.er_queues import PrimaryQueue, SpeculativeQueue, SpecOrder


def make_node(ply: int, value: float = 0.0, e_children: int = 0) -> PNode:
    node = PNode(position=None, path=(0,) * ply, ply=ply, parent=None, ntype=E_NODE)
    node.value = value
    node.e_children = e_children
    return node


class TestPrimaryQueue:
    def test_deepest_first(self):
        queue = PrimaryQueue()
        shallow, deep, mid = make_node(1), make_node(5), make_node(3)
        queue.push(shallow)
        queue.push(deep)
        queue.push(mid)
        assert queue.pop() is deep
        assert queue.pop() is mid
        assert queue.pop() is shallow

    def test_fifo_within_same_depth(self):
        queue = PrimaryQueue()
        a, b = make_node(2), make_node(2)
        queue.push(a)
        queue.push(b)
        assert queue.pop() is a
        assert queue.pop() is b

    def test_empty_pop_returns_none(self):
        assert PrimaryQueue().pop() is None

    def test_len(self):
        queue = PrimaryQueue()
        queue.push(make_node(1))
        assert len(queue) == 1
        queue.pop()
        assert len(queue) == 0


class TestSpeculativeQueue:
    def test_paper_order_prefers_fewer_e_children(self):
        queue = SpeculativeQueue(SpecOrder.PAPER)
        busy = make_node(1, e_children=3)
        fresh = make_node(4, e_children=0)
        queue.push(busy)
        queue.push(fresh)
        assert queue.pop() is fresh

    def test_paper_order_breaks_ties_shallower_first(self):
        queue = SpeculativeQueue(SpecOrder.PAPER)
        deep = make_node(6, e_children=1)
        shallow = make_node(2, e_children=1)
        queue.push(deep)
        queue.push(shallow)
        assert queue.pop() is shallow

    def test_fifo_order(self):
        queue = SpeculativeQueue(SpecOrder.FIFO)
        a = make_node(9, e_children=5)
        b = make_node(1, e_children=0)
        queue.push(a)
        queue.push(b)
        assert queue.pop() is a

    def test_deepest_order(self):
        queue = SpeculativeQueue(SpecOrder.DEEPEST)
        a, b = make_node(2), make_node(7)
        queue.push(a)
        queue.push(b)
        assert queue.pop() is b

    def test_best_value_order(self):
        queue = SpeculativeQueue(SpecOrder.BEST_VALUE)
        worse = make_node(1, value=10.0)
        better = make_node(1, value=-10.0)
        queue.push(worse)
        queue.push(better)
        assert queue.pop() is better

    def test_empty_pop_returns_none(self):
        assert SpeculativeQueue().pop() is None
