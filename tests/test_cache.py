"""Unit tests for :mod:`repro.cache` — striped, private, and shared-memory
transposition tables, their op generators, and the keying seam."""

import pytest

from repro.cache import (
    TT_MODES,
    SharedMemoryTT,
    SimStripedTT,
    StripedTT,
    WorkerLocalTT,
    make_tt,
)
from repro.cache.sharedmem import WAYS
from repro.costmodel import DEFAULT_COST_MODEL
from repro.errors import SearchError
from repro.games.base import hash_key
from repro.games.random_tree import RandomGameTree
from repro.search.transposition import Bound, TTEntry
from repro.sim.ops import Acquire, Compute, Release


def entry(value: float = 1.0, depth: int = 3, bound: Bound = Bound.EXACT) -> TTEntry:
    return TTEntry(value, depth, bound, None)


def drain(gen):
    """Run an op generator to completion, returning (ops, result)."""
    ops = []
    try:
        while True:
            ops.append(next(gen))
    except StopIteration as stop:
        return ops, stop.value


class TestStripedTT:
    def test_stripe_routing_partitions_keys(self):
        table = StripedTT(capacity=64, n_stripes=8)
        for key in range(100):
            assert table.stripe_of(key) == key % 8

    def test_probe_store_roundtrip(self):
        table = StripedTT(capacity=64)
        table.store(42, entry(value=7.0))
        got = table.probe(42)
        assert got is not None and got.value == 7.0
        assert table.probe(43) is None
        assert table.hits == 1 and table.misses == 1 and table.stores == 1

    def test_counter_snapshot_shape(self):
        table = StripedTT(capacity=16)
        snapshot = table.counter_snapshot()
        assert set(snapshot) == {
            "tt_hits", "tt_misses", "tt_stores", "tt_evictions", "tt_contended",
        }

    def test_rejects_bad_geometry(self):
        with pytest.raises(SearchError):
            StripedTT(capacity=16, n_stripes=0)
        with pytest.raises(SearchError):
            StripedTT(capacity=0)

    def test_clear_and_len(self):
        table = StripedTT(capacity=64)
        for key in range(10):
            table.store(key, entry())
        assert len(table) == 10
        table.clear()
        assert len(table) == 0


class TestSimStripedTT:
    def test_probe_op_charges_and_locks(self):
        table = SimStripedTT(capacity=64)
        table.store(5, entry(value=2.5))
        ops, result = drain(table.probe_op(5))
        assert result is not None and result.value == 2.5
        kinds = [type(op) for op in ops]
        assert kinds == [Acquire, Compute, Release]
        compute = next(op for op in ops if isinstance(op, Compute))
        assert compute.units == DEFAULT_COST_MODEL.tt_probe
        acquire = next(op for op in ops if isinstance(op, Acquire))
        assert acquire.lock.name == f"tt-stripe-{table.stripe_of(5)}"

    def test_store_op_roundtrip(self):
        table = SimStripedTT(capacity=64)
        ops, _ = drain(table.store_op(9, entry(value=-1.0)))
        assert [type(op) for op in ops] == [Acquire, Compute, Release]
        got = table.probe(9)
        assert got is not None and got.value == -1.0

    def test_view_is_shared(self):
        table = SimStripedTT(capacity=64)
        assert table.view(0) is table and table.view(3) is table


class TestWorkerLocalTT:
    def test_views_are_isolated(self):
        table = WorkerLocalTT(capacity=64)
        table.view(0).store(7, entry(value=1.0))
        assert table.view(0).probe(7) is not None
        assert table.view(1).probe(7) is None

    def test_capacity_is_per_worker(self):
        table = WorkerLocalTT(capacity=4)
        for pid in (0, 1):
            for key in range(4):
                table.view(pid).store(key * 8 + pid, entry())
        assert len(table) == 8

    def test_ops_charge_but_never_lock(self):
        table = WorkerLocalTT(capacity=64)
        ops, _ = drain(table.view(0).store_op(3, entry()))
        assert [type(op) for op in ops] == [Compute]
        ops, result = drain(table.view(0).probe_op(3))
        assert [type(op) for op in ops] == [Compute]
        assert result is not None


class TestMakeTT:
    def test_modes(self):
        assert make_tt("off") is None
        assert isinstance(make_tt("private"), WorkerLocalTT)
        assert isinstance(make_tt("shared"), SimStripedTT)
        assert set(TT_MODES) == {"off", "private", "shared"}

    def test_unknown_mode_raises(self):
        with pytest.raises(SearchError):
            make_tt("on")


class TestSharedMemoryTT:
    def make(self, capacity=256, n_stripes=8) -> SharedMemoryTT:
        return SharedMemoryTT(capacity=capacity, n_stripes=n_stripes)

    def teardown_table(self, table: SharedMemoryTT) -> None:
        table.close()
        table.unlink()

    def test_pack_unpack_roundtrip(self):
        table = self.make()
        try:
            cases = [
                (1, TTEntry(3.25, 4, Bound.EXACT, None)),
                (2, TTEntry(-1e9, 0, Bound.LOWER, 5)),
                (3, TTEntry(0.0, 31, Bound.UPPER, 0)),
            ]
            for key, e in cases:
                table.store(key, e)
            for key, e in cases:
                got = table.probe(key)
                assert got == e
        finally:
            self.teardown_table(table)

    def test_zero_key_aliases(self):
        table = self.make()
        try:
            table.store(0, entry(value=9.0))
            got = table.probe(0)
            assert got is not None and got.value == 9.0
            assert len(table) == 1
        finally:
            self.teardown_table(table)

    def test_same_key_keeps_deeper(self):
        table = self.make()
        try:
            table.store(11, entry(value=1.0, depth=5))
            table.store(11, entry(value=2.0, depth=3))  # shallower: dropped
            got = table.probe(11)
            assert got is not None and got.depth == 5 and got.value == 1.0
            table.store(11, entry(value=3.0, depth=6))  # deeper: replaces
            got = table.probe(11)
            assert got is not None and got.value == 3.0
        finally:
            self.teardown_table(table)

    def test_bucket_eviction_prefers_shallow_victim(self):
        # One stripe with WAYS slots: the bucket window is the whole stripe.
        table = SharedMemoryTT(capacity=WAYS, n_stripes=1)
        try:
            for i in range(WAYS):
                table.store(i + 1, entry(value=float(i), depth=i + 2))
            # Bucket full; a deep store evicts the shallowest (depth 2).
            table.store(WAYS + 1, entry(value=50.0, depth=10))
            assert table.evictions == 1
            assert table.probe(1) is None
            # A too-shallow store is dropped and counted as a collision.
            table.store(WAYS + 2, entry(value=60.0, depth=1))
            assert table.collisions == 1
            assert table.probe(WAYS + 2) is None
        finally:
            self.teardown_table(table)

    def test_attach_sees_owner_writes(self):
        table = self.make()
        try:
            table.store(77, entry(value=4.5))
            attached = SharedMemoryTT.attach(table.handle(), table.locks)
            try:
                got = attached.probe(77)
                assert got is not None and got.value == 4.5
                attached.store(78, entry(value=5.5))
                got = table.probe(78)
                assert got is not None and got.value == 5.5
            finally:
                attached.close()
        finally:
            self.teardown_table(table)

    def test_counter_snapshot_includes_collisions(self):
        table = self.make()
        try:
            assert "tt_collisions" in table.counter_snapshot()
        finally:
            self.teardown_table(table)

    def test_rejects_bad_geometry(self):
        with pytest.raises(SearchError):
            SharedMemoryTT(capacity=4, n_stripes=8)
        with pytest.raises(SearchError):
            SharedMemoryTT(capacity=16, n_stripes=0)


class TestHashKeySeam:
    def test_games_supply_their_own_keys(self):
        game = RandomGameTree(3, 4, seed=1)
        root = game.root()
        assert hash_key(game, root) == game.hash_key(root)

    def test_sibling_keys_differ(self):
        game = RandomGameTree(3, 4, seed=1)
        children = game.children(game.root())
        keys = {hash_key(game, child) for child in children}
        assert len(keys) == len(children)

    def test_rooted_game_forwards(self):
        from repro.games.base import RootedGame

        game = RandomGameTree(3, 4, seed=1)
        child = game.children(game.root())[0]
        rooted = RootedGame(game, child)
        assert hash_key(rooted, child) == hash_key(game, child)
