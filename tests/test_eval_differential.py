"""Differential eval-parity battery: ``batch_eval`` == scalar ``evaluate``.

Every ``batch_eval`` implementation must agree element-wise with its
scalar evaluator on all three execution paths — the numpy fast path, the
pure-python fallback (numpy masked off), and the generic scalar loop in
:func:`repro.games.base.batch_eval` — including empty and single-element
batches.  The battery pins every implementing class by name (checked by
staticcheck rule VER007): :class:`Othello`, :class:`ConnectFour`,
:class:`TicTacToe`, :class:`Nim`, :class:`RandomGameTree`,
:class:`IncrementalGameTree`, :class:`SyntheticOrderedTree`,
:class:`ExplicitTree`, and the :class:`RootedGame` forwarding adapter.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.games import (
    ConnectFour,
    ExplicitTree,
    IncrementalGameTree,
    Nim,
    RandomGameTree,
    SyntheticOrderedTree,
    TicTacToe,
    TreePosition,
    batch_eval,
)
from repro.games import _numpy
from repro.games.explicit import FIGURE6, FIGURE7
from repro.games.nim import normalize
from repro.games.othello import Othello
from repro.games.othello import batch as othello_batch


def assert_parity(game, positions) -> None:
    """Batch values equal scalar values on the fast path AND the fallback."""
    scalar = [game.evaluate(p) for p in positions]
    assert batch_eval(game, list(positions)) == scalar
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(_numpy, "HAVE_NUMPY", False)
        mp.setattr(othello_batch, "HAVE_NUMPY", False)
        assert batch_eval(game, list(positions)) == scalar


def walk_positions(game, budget: int, seed: int = 0):
    """A deterministic sample of reachable positions (shuffled DFS)."""
    rng = random.Random(seed)
    positions = []
    frontier = [game.root()]
    while frontier and len(positions) < budget:
        position = frontier.pop()
        positions.append(position)
        children = list(game.children(position))
        rng.shuffle(children)
        frontier.extend(children[:3])
    return positions


GAMES = {
    "random-tree": lambda: RandomGameTree(4, 5, seed=7),
    "random-tree-deep": lambda: RandomGameTree(2, 9, seed=1),
    "incremental": lambda: IncrementalGameTree(3, 6, seed=11, noise=0.4),
    "incremental-noiseless": lambda: IncrementalGameTree(3, 4, seed=2, noise=0.0),
    "ordered-first": lambda: SyntheticOrderedTree(4, 5, seed=3, best_child="first"),
    "ordered-last": lambda: SyntheticOrderedTree(4, 5, seed=3, best_child="last"),
    "ordered-random": lambda: SyntheticOrderedTree(4, 5, seed=3, best_child="random"),
    "explicit-fig6": lambda: ExplicitTree(FIGURE6),
    "explicit-fig7": lambda: ExplicitTree(FIGURE7),
    "nim": lambda: Nim((3, 4, 5)),
    "tictactoe": lambda: TicTacToe(),
    "connect4": lambda: ConnectFour(),
    "connect4-small": lambda: ConnectFour(5, 4),
    "othello": lambda: Othello(),
}


@pytest.mark.parametrize("name", sorted(GAMES))
def test_batch_matches_scalar(name: str) -> None:
    game = GAMES[name]()
    positions = walk_positions(game, budget=300)
    assert_parity(game, positions)


@pytest.mark.parametrize("name", sorted(GAMES))
def test_empty_and_singleton_batches(name: str) -> None:
    game = GAMES[name]()
    assert batch_eval(game, []) == []
    root = game.root()
    assert batch_eval(game, [root]) == [game.evaluate(root)]
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(_numpy, "HAVE_NUMPY", False)
        mp.setattr(othello_batch, "HAVE_NUMPY", False)
        assert batch_eval(game, []) == []
        assert batch_eval(game, [root]) == [game.evaluate(root)]


def test_oversized_connect4_board_takes_scalar_path() -> None:
    # 9 columns x 7 rows = 72 bits: beyond uint64, must fall back cleanly.
    game = ConnectFour(width=9, height=7)
    positions = walk_positions(game, budget=120)
    assert_parity(game, positions)


def test_rooted_game_forwards_batch_eval() -> None:
    """RootedGame batches through the underlying game: a serial subtree
    search must see the same values (and the same fast path) as the full
    search would at those positions."""
    from repro.games.base import RootedGame

    base = RandomGameTree(4, 5, seed=7)
    rooted = RootedGame(base, base.children(base.root())[1])
    positions = walk_positions(rooted, budget=200)
    assert_parity(rooted, positions)


def test_generic_seam_falls_back_to_scalar_loop() -> None:
    class Bare:
        """A game with no batch_eval — the seam must loop over evaluate."""

        def root(self):
            return 0

        def children(self, position):
            return ()

        def evaluate(self, position) -> float:
            return float(position * 2)

    assert batch_eval(Bare(), [1, 2, 3]) == [2.0, 4.0, 6.0]


# --------------------------------------------------------------------------
# Hypothesis properties: random positions, random batch sizes.
# --------------------------------------------------------------------------

_paths = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), max_size=7).map(tuple),
    max_size=24,
)


@given(seed=st.integers(min_value=0, max_value=2**16), paths=_paths)
def test_random_tree_parity_property(seed: int, paths) -> None:
    game = RandomGameTree(4, 5, seed=seed)
    assert_parity(game, [TreePosition(path) for path in paths])


@given(seed=st.integers(min_value=0, max_value=2**16), paths=_paths)
def test_incremental_tree_parity_property(seed: int, paths) -> None:
    game = IncrementalGameTree(4, 5, seed=seed, noise=0.3)
    assert_parity(game, [TreePosition(path) for path in paths])


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    placement=st.sampled_from(["first", "last", "random"]),
    paths=_paths,
)
def test_ordered_tree_parity_property(seed: int, placement: str, paths) -> None:
    game = SyntheticOrderedTree(4, 5, seed=seed, best_child=placement)
    assert_parity(game, [TreePosition(path) for path in paths])


@given(
    boards=st.lists(
        st.tuples(
            st.tuples(*[st.sampled_from([0, 1, 2])] * 9),
            st.sampled_from([1, 2]),
        ),
        max_size=24,
    )
)
def test_tictactoe_parity_property(boards) -> None:
    assert_parity(TicTacToe(), boards)


@given(
    heaps=st.lists(
        st.lists(st.integers(min_value=0, max_value=9), max_size=4),
        max_size=24,
    )
)
def test_nim_parity_property(heaps) -> None:
    assert_parity(Nim((3, 4, 5)), [normalize(h) for h in heaps])


@given(seed=st.integers(min_value=0, max_value=2**16), size=st.integers(0, 60))
def test_connect4_playout_parity_property(seed: int, size: int) -> None:
    game = ConnectFour()
    assert_parity(game, walk_positions(game, budget=size, seed=seed))


@given(seed=st.integers(min_value=0, max_value=2**16), size=st.integers(0, 40))
def test_othello_playout_parity_property(seed: int, size: int) -> None:
    game = Othello()
    assert_parity(game, walk_positions(game, budget=size, seed=seed))
