"""Unit tests for tic-tac-toe (the paper's Figure 1 substrate)."""

import pytest

from repro.errors import GameError, IllegalMoveError
from repro.games.base import SearchProblem
from repro.games.tictactoe import (
    EMPTY_BOARD,
    TicTacToe,
    legal_moves,
    play,
    position_from_string,
    winner,
)
from repro.search.alphabeta import alphabeta
from repro.core.serial_er import er_search


class TestRules:
    def test_empty_board_no_winner(self):
        assert winner(EMPTY_BOARD) == 0

    def test_row_win(self):
        cells = (1, 1, 1, 0, 2, 2, 0, 0, 0)
        assert winner(cells) == 1

    def test_column_win(self):
        cells = (2, 1, 0, 2, 1, 0, 2, 0, 0)
        assert winner(cells) == 2

    def test_diagonal_win(self):
        cells = (1, 2, 2, 0, 1, 0, 0, 0, 1)
        assert winner(cells) == 1

    def test_anti_diagonal_win(self):
        cells = (0, 2, 1, 0, 1, 2, 1, 0, 0)
        assert winner(cells) == 1

    def test_legal_moves_excludes_occupied(self):
        position = play((EMPTY_BOARD, 1), 4)
        assert 4 not in legal_moves(position[0])
        assert len(legal_moves(position[0])) == 8

    def test_play_alternates(self):
        position = (EMPTY_BOARD, 1)
        position = play(position, 0)
        assert position[1] == 2
        position = play(position, 1)
        assert position[1] == 1

    def test_play_occupied_raises(self):
        position = play((EMPTY_BOARD, 1), 0)
        with pytest.raises(IllegalMoveError):
            play(position, 0)

    def test_play_out_of_range_raises(self):
        with pytest.raises(IllegalMoveError):
            play((EMPTY_BOARD, 1), 9)

    def test_play_after_game_over_raises(self):
        cells = (1, 1, 1, 2, 2, 0, 0, 0, 0)
        with pytest.raises(IllegalMoveError):
            play((cells, 2), 8)


class TestGameAdapter:
    def test_children_count_at_root(self):
        game = TicTacToe()
        assert len(game.children(game.root())) == 9

    def test_no_children_after_win(self):
        game = TicTacToe()
        cells = (1, 1, 1, 2, 2, 0, 0, 0, 0)
        assert game.children((cells, 2)) == ()

    def test_terminal_loss_is_minus_one(self):
        game = TicTacToe()
        cells = (1, 1, 1, 2, 2, 0, 0, 0, 0)
        assert game.evaluate((cells, 2)) == -1.0

    def test_draw_is_zero(self):
        game = TicTacToe()
        cells = (1, 2, 1, 1, 2, 2, 2, 1, 1)
        assert winner(cells) == 0
        assert game.evaluate((cells, 2)) == 0.0

    def test_heuristic_is_antisymmetric_at_root(self):
        game = TicTacToe()
        assert game.evaluate((EMPTY_BOARD, 1)) == -game.evaluate((EMPTY_BOARD, 2))

    def test_render_contains_marks(self):
        game = TicTacToe()
        text = TicTacToe.render(play(game.root(), 4))
        assert "X" in text and "O to move" in text


class TestFigure1:
    """The paper's Figure 1: tic-tac-toe is a draw under optimal play."""

    def test_root_value_is_zero(self):
        problem = SearchProblem(TicTacToe(), depth=9)
        assert alphabeta(problem).value == 0.0

    def test_er_agrees(self):
        problem = SearchProblem(TicTacToe(), depth=9)
        assert er_search(problem).value == 0.0

    def test_win_in_one_found(self):
        # X to move with two in a row: value must be a win (+1 for mover).
        position = position_from_string("XX. OO. ...", to_move=1)
        game = TicTacToe()

        class Rooted:
            def root(self):
                return position

            def children(self, p):
                return game.children(p)

            def evaluate(self, p):
                return game.evaluate(p)

        problem = SearchProblem(Rooted(), depth=7)
        assert alphabeta(problem).value == 1.0


class TestParsing:
    def test_round_trip(self):
        position = position_from_string("X.O .X. ..O", to_move=1)
        assert position[0][0] == 1
        assert position[0][2] == 2
        assert position[0][4] == 1

    def test_bad_length(self):
        with pytest.raises(GameError):
            position_from_string("X.O", to_move=1)

    def test_bad_glyph(self):
        with pytest.raises(GameError):
            position_from_string("Z........", to_move=1)

    def test_bad_mover(self):
        with pytest.raises(GameError):
            position_from_string(".........", to_move=3)
