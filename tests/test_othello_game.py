"""Unit tests for the Othello game adapter and evaluator."""

import pytest

from repro.errors import GameError
from repro.games.base import SearchProblem
from repro.games.othello import (
    BLACK,
    O1_ROOT,
    O2_ROOT,
    O3_ROOT,
    START,
    WHITE,
    Othello,
    OthelloPosition,
    evaluate,
    play_opening,
)
from repro.games.othello import board as B
from repro.games.othello.evaluator import WIN_SCORE
from repro.search.alphabeta import alphabeta
from repro.search.negamax import negamax
from repro.core.serial_er import er_search


class TestAdapter:
    def test_root_children_count(self):
        game = Othello()
        assert len(game.children(game.root())) == 4

    def test_children_swap_perspective(self):
        game = Othello()
        child = game.children(game.root())[0]
        assert child.color == WHITE
        assert child.disc_count == 5

    def test_pass_position(self):
        # Construct a position where the mover has no move but opponent does:
        # a single white disc next to a black run (white to move, boxed in).
        own = B.square_bit("a1")  # mover
        opp = B.square_bit("b1") | B.square_bit("c1")
        # mover can't capture (no own disc beyond), opponent can capture a1..?
        game = Othello()
        position = OthelloPosition(own, opp, WHITE)
        if B.legal_moves(own, opp) == 0 and B.legal_moves(opp, own) != 0:
            kids = game.children(position)
            assert len(kids) == 1  # forced pass
            assert kids[0].own == opp and kids[0].opp == own

    def test_game_over_no_children(self):
        game = Othello()
        # Full board: no moves for either side.
        own = B.FULL & 0x5555555555555555
        opp = B.FULL & ~own
        assert game.children(OthelloPosition(own, opp, BLACK)) == ()


class TestEvaluator:
    def test_antisymmetric(self):
        for position in (START, O1_ROOT, O2_ROOT):
            assert evaluate(position.own, position.opp) == -evaluate(position.opp, position.own)

    def test_corner_is_good(self):
        base = O1_ROOT
        with_corner = OthelloPosition(base.own | B.square_bit("a1"), base.opp, base.color)
        assert evaluate(with_corner.own, with_corner.opp) > evaluate(base.own, base.opp)

    def test_terminal_win_scored_beyond_heuristics(self):
        own = 0x0000000FFFFFFFFF  # 36 discs
        opp = B.FULL & ~own  # 28 discs; the board is full, so game over
        value = evaluate(own, opp)
        assert value > WIN_SCORE

    def test_terminal_draw_is_zero(self):
        own = 0xFFFFFFFF00000000
        opp = 0x00000000FFFFFFFF
        assert evaluate(own, opp) == 0.0


class TestExperimentRoots:
    @pytest.mark.parametrize("root", [O1_ROOT, O2_ROOT, O3_ROOT])
    def test_white_to_move_midgame(self, root):
        assert root.color == WHITE
        assert 19 <= root.disc_count <= 30
        # The position must be live: someone can move.
        assert B.legal_moves(root.own, root.opp) != 0 or B.legal_moves(root.opp, root.own) != 0

    def test_roots_are_distinct(self):
        boards = {(r.black, r.white) for r in (O1_ROOT, O2_ROOT, O3_ROOT)}
        assert len(boards) == 3

    def test_play_opening_deterministic(self):
        assert play_opening(10, seed=5) == play_opening(10, seed=5)

    def test_play_opening_counts_discs(self):
        position = play_opening(10, seed=5)
        assert position.disc_count == 14  # 4 initial + 10 moves


class TestSearchOnOthello:
    def test_all_algorithms_agree_depth3(self):
        problem = SearchProblem(Othello(O1_ROOT), depth=3, sort_below_root=2)
        truth = negamax(problem).value
        assert alphabeta(problem).value == truth
        assert er_search(problem).value == truth

    def test_render(self):
        text = Othello.render(START)
        assert "black to move" in text
