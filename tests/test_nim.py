"""Nim: every search algorithm versus Sprague-Grundy theory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.er_parallel import ERConfig, parallel_er
from repro.core.serial_er import er_search
from repro.errors import GameError
from repro.games.base import SearchProblem
from repro.games.nim import (
    Nim,
    grundy_value,
    max_game_length,
    normalize,
    theoretical_value,
)
from repro.parallel import mwf, tree_splitting
from repro.search.alphabeta import alphabeta
from repro.search.negamax import negamax
from repro.search.negascout import negascout

heap_lists = st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=3)


def nim_problem(heaps) -> SearchProblem:
    game = Nim(heaps)
    return SearchProblem(game, depth=max_game_length(heaps) + 1)


class TestRules:
    def test_normalize_sorts_and_drops_zeros(self):
        assert normalize([3, 0, 1]) == (1, 3)

    def test_normalize_rejects_negative(self):
        with pytest.raises(GameError):
            normalize([-1, 2])

    def test_children_dedupe(self):
        game = Nim((2, 2))
        kids = game.children((2, 2))
        # (1,2) and (2) each reachable from either heap, but listed once.
        assert len(kids) == len(set(kids)) == 2

    def test_empty_position_terminal(self):
        game = Nim((1,))
        assert game.children(()) == ()
        assert game.evaluate(()) == -1.0

    def test_grundy_is_xor(self):
        assert grundy_value((1, 2, 3)) == 0
        assert grundy_value((3, 4, 5)) == 2


class TestTheoryAgreement:
    @given(heap_lists)
    @settings(max_examples=30)
    def test_negamax_matches_bouton(self, heaps):
        """Bouton's theorem, verified by exhaustive search."""
        problem = nim_problem(heaps)
        assert negamax(problem).value == theoretical_value(normalize(heaps))

    @given(heap_lists)
    @settings(max_examples=30)
    def test_all_serial_algorithms_match_theory(self, heaps):
        problem = nim_problem(heaps)
        truth = theoretical_value(normalize(heaps))
        assert alphabeta(problem).value == truth
        assert er_search(problem).value == truth
        assert negascout(problem).value == truth

    @given(heap_lists, st.integers(min_value=1, max_value=6))
    @settings(max_examples=20)
    def test_parallel_er_matches_theory(self, heaps, n):
        problem = nim_problem(heaps)
        truth = theoretical_value(normalize(heaps))
        result = parallel_er(problem, n, config=ERConfig(serial_depth=2))
        assert result.value == truth

    def test_baselines_match_theory(self):
        problem = nim_problem((2, 3, 4))
        truth = theoretical_value((2, 3, 4))
        assert mwf(problem, 4).value == truth
        assert tree_splitting(problem, 7).value == truth

    def test_classic_345_is_first_player_win(self):
        assert theoretical_value((3, 4, 5)) == 1.0
        assert alphabeta(nim_problem((3, 4, 5))).value == 1.0

    def test_equal_pair_is_second_player_win(self):
        assert theoretical_value((4, 4)) == -1.0
        assert alphabeta(nim_problem((4, 4))).value == -1.0
