"""Stateful property test for the transposition table's replacement policy:
LRU recency with depth-preferred capacity eviction (the victim is the
shallowest entry in the eviction-scan window, ties to least recent)."""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.search.transposition import EVICTION_SCAN, Bound, TranspositionTable, TTEntry

CAPACITY = 8
# Capacity 8 with an 8-entry scan window means the reference eviction
# below considers every old entry, exactly like the implementation.
assert CAPACITY <= EVICTION_SCAN

KEYS = st.integers(min_value=0, max_value=19)


class TranspositionMachine(RuleBasedStateMachine):
    """Drives the table against a simple dict+list reference model."""

    def __init__(self):
        super().__init__()
        self.table = TranspositionTable(capacity=CAPACITY)
        self.model: dict[int, TTEntry] = {}
        self.recency: list[int] = []  # least recent first

    def _touch(self, key: int) -> None:
        if key in self.recency:
            self.recency.remove(key)
        self.recency.append(key)

    @rule(key=KEYS, value=st.integers(-50, 50), depth=st.integers(0, 5))
    def store(self, key, value, depth):
        entry = TTEntry(float(value), depth, Bound.EXACT, None)
        self.table.store(key, entry)
        existing = self.model.get(key)
        if existing is not None and existing.depth > depth:
            return  # deeper entries are kept; no recency change either
        self.model[key] = entry
        self._touch(key)
        if len(self.model) > CAPACITY:
            # Depth-preferred: evict the shallowest *old* entry; ties
            # fall to the least recently used (earliest in recency).
            victim = None
            for candidate in self.recency:
                if candidate == key:
                    continue
                if victim is None or self.model[candidate].depth < self.model[victim].depth:
                    victim = candidate
            self.recency.remove(victim)
            del self.model[victim]

    @rule(key=KEYS)
    def probe(self, key):
        got = self.table.probe(key)
        expected = self.model.get(key)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got.value == expected.value
            assert got.depth == expected.depth
            self._touch(key)

    @invariant()
    def sizes_agree(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def capacity_respected(self):
        assert len(self.table) <= CAPACITY


TestTranspositionMachine = TranspositionMachine.TestCase
