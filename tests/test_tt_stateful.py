"""Stateful property test for the transposition table's LRU semantics."""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.search.transposition import Bound, TranspositionTable, TTEntry

KEYS = st.integers(min_value=0, max_value=19)


class TranspositionMachine(RuleBasedStateMachine):
    """Drives the table against a simple dict+list reference model."""

    def __init__(self):
        super().__init__()
        self.table = TranspositionTable(capacity=8)
        self.model: dict[int, TTEntry] = {}
        self.recency: list[int] = []  # least recent first

    def _touch(self, key: int) -> None:
        if key in self.recency:
            self.recency.remove(key)
        self.recency.append(key)

    @rule(key=KEYS, value=st.integers(-50, 50), depth=st.integers(0, 5))
    def store(self, key, value, depth):
        entry = TTEntry(float(value), depth, Bound.EXACT, None)
        self.table.store(key, entry)
        existing = self.model.get(key)
        if existing is not None and existing.depth > depth:
            return  # deeper entries are kept; no recency change either
        self.model[key] = entry
        self._touch(key)
        if len(self.model) > 8:
            evicted = self.recency.pop(0)
            del self.model[evicted]

    @rule(key=KEYS)
    def probe(self, key):
        got = self.table.probe(key)
        expected = self.model.get(key)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got.value == expected.value
            assert got.depth == expected.depth
            self._touch(key)

    @invariant()
    def sizes_agree(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def capacity_respected(self):
        assert len(self.table) <= 8


TestTranspositionMachine = TranspositionMachine.TestCase
