"""Tests for enhanced pv-splitting with minimal-window verification
(the paper's footnote 3: Marsland & Popowich's variant)."""

import pytest

from repro.games.base import SearchProblem
from repro.games.random_tree import IncrementalGameTree, SyntheticOrderedTree
from repro.parallel import pv_splitting
from repro.search.alphabeta import alphabeta
from repro.search.negamax import negamax

from conftest import random_problem


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_matches_negamax(self, k):
        for seed in range(3):
            problem = random_problem(3, 4, seed)
            truth = negamax(problem).value
            result = pv_splitting(problem, k, minimal_window=True)
            assert result.value == truth

    def test_ordered_trees(self):
        tree = SyntheticOrderedTree(3, 5, seed=2, best_child="random")
        problem = SearchProblem(tree, depth=5)
        result = pv_splitting(problem, 7, minimal_window=True)
        assert result.value == float(tree.root_value)

    def test_extras_reported(self):
        problem = random_problem(4, 4, seed=6)
        result = pv_splitting(problem, 5, minimal_window=True)
        assert result.extras["minimal_window"] is True
        assert result.extras["scout_researches"] >= 0


class TestBehaviour:
    def test_scout_probes_cheaper_on_ordered_trees(self):
        """On strongly ordered trees the scout windows refute siblings
        with less work than real-window tree-splitting."""
        tree = IncrementalGameTree(5, 6, seed=4, noise=0.2)
        problem = SearchProblem(tree, depth=6, sort_below_root=6)
        serial = alphabeta(problem).stats.cost
        plain = pv_splitting(problem, 7)
        scout = pv_splitting(problem, 7, minimal_window=True)
        assert scout.value == plain.value
        # The enhanced variant must not be meaningfully slower, and its
        # total work (busy time) should not exceed the plain variant's.
        assert scout.sim_time <= plain.sim_time * 1.2
        assert scout.report.total_busy <= plain.report.total_busy * 1.1

    def test_researches_happen_on_disordered_trees(self):
        tree = SyntheticOrderedTree(4, 6, seed=1, best_child="last")
        problem = SearchProblem(tree, depth=6)
        result = pv_splitting(problem, 7, minimal_window=True)
        assert result.extras["scout_researches"] > 0
