"""Regression battery for the MetricsServer start/stop lifecycle.

The original server hung forever if ``stop()`` ran before ``start()``
(``socketserver.shutdown()`` waits on an event only ``serve_forever``
sets) and leaked the port on double-stop paths.  These tests pin the
repaired contract: idempotent start, deterministic stop from any state,
immediate port rebind after stop, no restart after stop, and a clear
error when the port is taken.
"""

from __future__ import annotations

import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.promtext import MetricsServer


def _collect() -> dict[str, float]:
    return {"demo.count": 3.0}


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode("utf-8")


class TestLifecycle:
    def test_stop_before_start_returns_immediately(self) -> None:
        server = MetricsServer(_collect)
        done = threading.Event()

        def stopper() -> None:
            server.stop()  # historically hung forever here
            done.set()

        thread = threading.Thread(target=stopper, daemon=True)
        thread.start()
        assert done.wait(timeout=5.0), "stop() before start() must not block"
        thread.join(timeout=5.0)

    def test_start_is_idempotent(self) -> None:
        server = MetricsServer(_collect)
        try:
            assert server.start() is server
            assert server.start() is server  # no second serving thread
            threads = [
                t for t in threading.enumerate() if t.name == "repro-metrics"
            ]
            assert len(threads) == 1
            assert "repro_demo_count 3" in _scrape(server.url)
        finally:
            server.stop()

    def test_stop_is_idempotent_and_releases_port(self) -> None:
        server = MetricsServer(_collect)
        server.start()
        port = server.port
        server.stop()
        server.stop()  # second stop is a no-op, not an error
        # Deterministic release: the port is rebindable right now.
        rebound = MetricsServer(_collect, port=port)
        try:
            rebound.start()
            assert rebound.port == port
            assert "repro_demo_count 3" in _scrape(rebound.url)
        finally:
            rebound.stop()

    def test_start_after_stop_raises(self) -> None:
        server = MetricsServer(_collect)
        server.start()
        server.stop()
        with pytest.raises(OSError, match="cannot restart"):
            server.start()

    def test_port_conflict_raises_named_oserror(self) -> None:
        holder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            taken = holder.getsockname()[1]
            with pytest.raises(OSError, match=f"127.0.0.1:{taken}"):
                MetricsServer(_collect, port=taken)
        finally:
            holder.close()

    def test_context_manager_serves_and_stops(self) -> None:
        with MetricsServer(_collect) as server:
            url = server.url
            assert "repro_demo_count 3" in _scrape(url)
        with pytest.raises(urllib.error.URLError):
            _scrape(url)  # endpoint gone after the with-block