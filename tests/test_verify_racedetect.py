"""Race detector: mutation-mode self-test, seeded injections, clean gates.

Three layers of evidence that the detector works:

1. :func:`repro.verify.racedetect.self_test` — the detector's own
   mutation-mode check (clean trace passes, three seeded mutations each
   caught).
2. Hand-built injection traces for every defect class the detector
   claims to find — each must surface the right ``Finding.kind``.
3. Clean-trace gates: fresh fixed-seed captures from the sim, threaded,
   and multiproc backends must analyze with zero findings, so the gates
   in CI fail if anyone reintroduces an inconsistently-locked access.
"""

from __future__ import annotations

import pytest

from repro.errors import LockOrderError
from repro.sim.engine import Engine
from repro.sim.locks import LockOrderGraph, SimLock
from repro.sim.ops import Acquire, Compute, Op, Release
from repro.verify import harness
from repro.verify.racedetect import analyze, self_test
from repro.verify.trace import (
    ACQUIRE,
    NOTIFY,
    READ,
    RELEASE,
    WAIT,
    WAKE,
    WRITE,
    Event,
)

# ---------------------------------------------------------------------------
# Layer 1: the detector's own mutation-mode self-test.
# ---------------------------------------------------------------------------


def test_self_test_passes() -> None:
    self_test()  # raises VerificationError on any failure


# ---------------------------------------------------------------------------
# Layer 2: seeded injection traces, one per defect class.
# ---------------------------------------------------------------------------


def _locked_section(task: int, lock: str = "L", obj: str = "counters.jobs") -> list[Event]:
    return [
        Event(ACQUIRE, task, lock),
        Event(READ, task, obj),
        Event(WRITE, task, obj),
        Event(RELEASE, task, lock),
    ]


def test_injected_missing_acquire_is_a_data_race() -> None:
    trace = _locked_section(1) + [
        # Task 2 touches the counter with no lock at all.
        Event(READ, 2, "counters.jobs"),
        Event(WRITE, 2, "counters.jobs"),
    ]
    report = analyze(trace)
    assert any(f.kind == "data-race" for f in report.findings)


def test_injected_reordered_release_is_caught() -> None:
    trace = [
        Event(ACQUIRE, 1, "L"),
        Event(RELEASE, 1, "L"),
        # The critical section now runs after the release.
        Event(WRITE, 1, "counters.jobs"),
        Event(RELEASE, 1, "L"),  # second release of an unheld lock
    ] + _locked_section(2)
    report = analyze(trace)
    kinds = {f.kind for f in report.findings}
    assert "unheld-release" in kinds or "data-race" in kinds


def test_injected_racy_counter_two_unlocked_writers() -> None:
    trace = [
        Event(WRITE, 1, "counters.pops"),
        Event(WRITE, 2, "counters.pops"),
        Event(WRITE, 1, "counters.pops"),
    ]
    report = analyze(trace)
    races = [f for f in report.findings if f.kind == "data-race"]
    assert races and any("counters.pops" in f.obj for f in races)


def test_injected_lock_order_inversion_is_caught() -> None:
    trace = [
        Event(ACQUIRE, 1, "A"),
        Event(ACQUIRE, 1, "B"),
        Event(RELEASE, 1, "B"),
        Event(RELEASE, 1, "A"),
        Event(ACQUIRE, 2, "B"),
        Event(ACQUIRE, 2, "A"),  # opposite nesting: deadlock window
        Event(RELEASE, 2, "A"),
        Event(RELEASE, 2, "B"),
    ]
    report = analyze(trace)
    assert any(f.kind == "lock-order" for f in report.findings)


def test_injected_stale_version_wait_is_a_lost_wakeup() -> None:
    trace = [
        Event(NOTIFY, 1, "work", version=1),
        # Waiter blocks having seen version 0 although the signal is at 1:
        # the wake-up it needs has already happened.
        Event(WAIT, 2, "work", seen_version=0, version=1),
        Event(WAKE, 2, "work"),
    ]
    report = analyze(trace)
    assert any(f.kind == "lost-wakeup" for f in report.findings)


def test_lockset_violation_reported_even_when_interleaving_ordered() -> None:
    """Scheduling is not synchronization: ordered-by-luck still flags."""
    trace = _locked_section(1) + [
        Event(ACQUIRE, 2, "M"),  # wrong lock — no common protection
        Event(WRITE, 2, "counters.jobs"),
        Event(RELEASE, 2, "M"),
    ]
    report = analyze(trace)
    assert any(
        f.kind == "data-race" and "counters.jobs" in f.obj for f in report.findings
    )


def test_relaxed_access_is_exempt() -> None:
    trace = [
        Event(WRITE, 1, "heap.primary"),
        Event(READ, 2, "heap.primary", relaxed=True),  # documented benign peek
    ]
    report = analyze(trace)
    assert report.ok


# ---------------------------------------------------------------------------
# Layer 3: clean-trace gates over every backend.
# ---------------------------------------------------------------------------


def test_sim_trace_is_clean() -> None:
    report = analyze(harness.capture_sim_trace())
    assert report.ok, report.summary()
    assert report.events > 1000  # the capture actually exercised the search


def test_sim_serial_depth_trace_is_clean() -> None:
    report = analyze(harness.capture_sim_serial_depth_trace())
    assert report.ok, report.summary()


def test_threaded_trace_is_clean() -> None:
    report = analyze(harness.capture_threaded_trace())
    assert report.ok, report.summary()
    assert report.tasks >= 2  # real threads actually participated


@pytest.mark.slow
def test_multiproc_trace_is_clean() -> None:
    report = analyze(harness.capture_multiproc_trace())
    assert report.ok, report.summary()


# ---------------------------------------------------------------------------
# Satellite: the simulator itself aborts on lock-order inversions.
# ---------------------------------------------------------------------------


def test_lock_order_graph_reports_inversion() -> None:
    graph = LockOrderGraph()
    assert graph.record(["A"], "B") is None
    assert graph.record(["B"], "A") == "B"


def test_sim_engine_aborts_on_lock_order_inversion() -> None:
    a, b = SimLock("A"), SimLock("B")

    def forward():
        yield Acquire(a)
        yield Compute(5.0)
        yield Acquire(b)
        yield Release(b)
        yield Release(a)

    def backward():
        yield Acquire(b)
        yield Compute(1.0)
        yield Acquire(a)
        yield Release(a)
        yield Release(b)

    with pytest.raises(LockOrderError):
        Engine([forward(), backward()]).run()


def test_sim_engine_consistent_nesting_is_fine() -> None:
    a, b = SimLock("A"), SimLock("B")

    def worker(delay: float):
        yield Compute(delay)
        yield Acquire(a)
        yield Acquire(b)
        yield Compute(1.0)
        yield Release(b)
        yield Release(a)

    report = Engine([worker(0.0), worker(0.5)]).run()
    assert report.makespan > 0
