"""Cross-request parity: the service path against the serial oracle.

Extends the backend-parity grid (``test_backend_parity.CASES``) to the
search service: N interleaved concurrent requests over mixed games and
seeds must each report exactly the move and per-move values the serial
alpha-beta :class:`~repro.engine.GameEngine` picks for the same
position at the same depth — with and without a warm shared
transposition table spanning the requests.

Catalog rules for the warm (shared-TT) battery:

* every synthetic tree in one catalog carries a distinct seed, because
  the tree families all key the table with ``path_hash(seed, path)`` —
  two trees sharing a seed share keys for overlapping paths, and a
  cross-workload hit would be a genuine collision, not a transposition;
* within one workload every request uses one ``max_depth``, so the
  deepest entry ever stored at a child root is exactly the depth the
  next request's final iteration probes;
* only games whose position fixes its ply qualify (path-keyed trees,
  piece-count games like tic-tac-toe and Connect Four).  Nim is
  excluded on purpose: taking several objects in one move makes the
  same position reachable at *different plies*, the table then holds a
  deeper proof for it, and the probe gate's depth-``>=`` acceptance
  legitimately substitutes that deeper value — sound for play,
  but a different quantity than this fixed-depth oracle.  Nim stays in
  the no-table battery below.
"""

from __future__ import annotations

import asyncio

import pytest

import test_backend_parity as grid
from repro.engine import EngineConfig, GameEngine, MoveChoice
from repro.serve import (
    SearchRequest,
    SearchService,
    ServeConfig,
    ServeWorkload,
)
from repro.verify import trace as _trace
from repro.verify.racedetect import analyze

#: Case ids safe to serve from ONE shared transposition table: distinct
#: seeds for the path-hashed synthetic trees, Zobrist-keyed board games.
WARM_SAFE_IDS = (
    "rand-d2h4s0",
    "rand-d3h4s1",
    "rand-d4h3s2",
    "rand-d2h5s3",
    "explicit-fig6",
    "tictactoe-d3",
    "connect4-4x4d3",
    "othello-O1d2",
)

#: A wider mix for the no-TT battery (seed collisions and variable-ply
#: transpositions are harmless with no table).
COLD_IDS = WARM_SAFE_IDS + (
    "rand-d2h4s1",
    "incr-d3h3s0",
    "synth-s0",
    "nim-2_3d3",
    "explicit-ragged",
    "explicit-ties",
)


def _case_factories() -> dict[str, object]:
    return {param.id: param.values[0] for param in grid.CASES}


def build_catalog(ids: tuple[str, ...]) -> tuple[dict[str, ServeWorkload], dict[str, int]]:
    """Instantiate grid cases as service workloads; returns (catalog, depths)."""
    factories = _case_factories()
    catalog: dict[str, ServeWorkload] = {}
    depths: dict[str, int] = {}
    for case_id in ids:
        problem = factories[case_id]()  # type: ignore[operator]
        catalog[case_id] = ServeWorkload(
            name=case_id,
            make_game=lambda game=problem.game: game,
            sort_below_root=problem.sort_below_root,
            default_depth=problem.depth,
        )
        depths[case_id] = problem.depth
    return catalog, depths


def oracle_choices(
    catalog: dict[str, ServeWorkload], depths: dict[str, int]
) -> dict[str, MoveChoice]:
    """Serial alpha-beta engine decision per workload — the ground truth."""
    choices: dict[str, MoveChoice] = {}
    for name, workload in catalog.items():
        game = workload.make_game()
        engine = GameEngine(
            game,
            EngineConfig(
                algorithm="alphabeta",
                max_depth=depths[name],
                sort_below_root=workload.sort_below_root,
            ),
        )
        choices[name] = engine.choose(game.root())
    return choices


def serve_rounds(
    catalog: dict[str, ServeWorkload],
    depths: dict[str, int],
    *,
    tt_mode: str,
    rounds: int,
) -> tuple[list[SearchRequest], list, dict[str, int]]:
    """Interleave ``rounds`` concurrent requests per workload through a service."""
    config = ServeConfig(
        n_workers=3,
        max_concurrency=4,
        queue_limit=len(catalog) * rounds + 1,
        tt_mode=tt_mode,
    )
    requests = [
        SearchRequest(
            request_id=f"{name}#{round_index}",
            workload=name,
            max_depth=depths[name],
        )
        for round_index in range(rounds)
        for name in catalog
    ]

    async def run() -> list:
        async with SearchService(config, catalog=catalog) as service:
            replies = await asyncio.gather(
                *(service.handle(request) for request in requests)
            )
            assert service.scheduler is not None
            assert service.scheduler.conservation_problems() == []
        return replies

    replies = asyncio.run(run())
    return requests, replies, {}


def assert_replies_match_oracle(requests, replies, oracle) -> None:
    assert len(replies) == len(requests)
    for request, reply in zip(requests, replies):
        truth = oracle[request.workload]
        tag = f"{request.request_id} (workload {request.workload})"
        assert reply.status == "ok", f"{tag}: {reply.status} ({reply.detail})"
        assert reply.depth_reached == request.max_depth, tag
        assert reply.per_move_values == truth.per_move_values, (
            f"{tag}: service values {reply.per_move_values} != "
            f"oracle {truth.per_move_values}"
        )
        assert reply.move_index == truth.move_index, tag
        assert reply.value == truth.value, tag


def test_concurrent_requests_match_serial_oracle_no_tt() -> None:
    """Interleaved mixed-game requests, no table: exact oracle parity."""
    catalog, depths = build_catalog(COLD_IDS)
    oracle = oracle_choices(catalog, depths)
    requests, replies, _ = serve_rounds(catalog, depths, tt_mode="off", rounds=2)
    assert_replies_match_oracle(requests, replies, oracle)


def test_concurrent_requests_match_serial_oracle_warm_shared_tt() -> None:
    """Three rounds over one warm shared TT: reuse must not change values."""
    catalog, depths = build_catalog(WARM_SAFE_IDS)
    oracle = oracle_choices(catalog, depths)

    config = ServeConfig(
        n_workers=3,
        max_concurrency=4,
        queue_limit=len(catalog) * 3 + 1,
        tt_mode="shared",
        tt_capacity=1 << 15,
    )
    requests = [
        SearchRequest(
            request_id=f"{name}#{round_index}",
            workload=name,
            max_depth=depths[name],
        )
        for round_index in range(3)
        for name in catalog
    ]

    async def run() -> tuple[list, dict[str, int]]:
        async with SearchService(config, catalog=catalog) as service:
            replies = await asyncio.gather(
                *(service.handle(request) for request in requests)
            )
            assert service.scheduler is not None
            assert service.scheduler.conservation_problems() == []
        return replies, service.final_counters

    replies, final = asyncio.run(run())
    assert_replies_match_oracle(requests, replies, oracle)
    # The warm table actually worked across requests: later rounds hit
    # entries the earlier rounds stored.
    assert final.get("tt_hits", 0) > 0, f"shared TT never hit: {final}"


def test_service_parity_round_is_race_clean() -> None:
    """One parity round under the race detector (ServeMetrics discipline)."""
    catalog, depths = build_catalog(("explicit-fig6", "rand-d2h4s0", "tictactoe-d3"))
    oracle = oracle_choices(catalog, depths)
    with _trace.tracing() as recorder:
        requests, replies, _ = serve_rounds(
            catalog, depths, tt_mode="shared", rounds=2
        )
    assert_replies_match_oracle(requests, replies, oracle)
    report = analyze(recorder.events)
    assert report.ok, report.summary()


@pytest.mark.parametrize("case_id", WARM_SAFE_IDS)
def test_single_request_parity_per_case(case_id: str) -> None:
    """Each warm-battery case individually matches the oracle end to end."""
    catalog, depths = build_catalog((case_id,))
    oracle = oracle_choices(catalog, depths)
    requests, replies, _ = serve_rounds(catalog, depths, tt_mode="shared", rounds=1)
    assert_replies_match_oracle(requests, replies, oracle)