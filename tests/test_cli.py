"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "11", "--scale", "reduced"])
        assert args.number == 11
        assert args.scale == "reduced"

    def test_figure_rejects_unknown_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_serial_command(self, capsys):
        assert main(["serial", "--tree", "R3", "--scale", "reduced"]) == 0
        out = capsys.readouterr().out
        assert "alpha-beta" in out and "serial ER" in out and "best serial" in out

    def test_figure_command_small_sweep(self, capsys):
        assert main(["figure", "11", "--processors", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "R1" in out and "efficiency" in out.lower()

    def test_nodes_figure(self, capsys):
        assert main(["figure", "13", "--processors", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "nodes generated" in out.lower()

    def test_losses_command(self, capsys):
        assert main(["losses", "--tree", "R3", "-P", "2"]) == 0
        out = capsys.readouterr().out
        assert "speculative fraction" in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_gantt_command(self, capsys):
        assert main(["gantt", "--tree", "R3", "-P", "4", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out and "legend" in out

    def test_baselines_command(self, capsys):
        assert main(["baselines", "--processors", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "aspiration" in out and "MWF" in out


class TestObservability:
    def test_trace_args(self):
        args = build_parser().parse_args(["trace", "--tree", "R1", "-P", "2"])
        assert args.tree == "R1"
        assert args.processors_single == 2
        assert args.backend == "sim"

    def test_trace_writes_trace_jsonl_and_ledger(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        assert (
            main(
                [
                    "trace",
                    "--tree",
                    "R3",
                    "-P",
                    "2",
                    "-o",
                    str(out),
                    "--jsonl",
                    "--ledger-dir",
                    str(tmp_path / "ledger"),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        assert out.with_suffix(".jsonl").exists()
        records = list((tmp_path / "ledger").glob("*.json"))
        assert len(records) == 1
        assert "perfetto" in capsys.readouterr().out.lower()

    def test_compare_identical_runs_report_no_regressions(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        for name in ("a", "b"):
            assert (
                main(
                    [
                        "trace",
                        "--tree",
                        "R3",
                        "-P",
                        "2",
                        "-o",
                        str(tmp_path / f"{name}.trace.json"),
                        "--ledger-dir",
                        str(ledger_dir / name),
                    ]
                )
                == 0
            )
        first = next((ledger_dir / "a").glob("*.json"))
        second = next((ledger_dir / "b").glob("*.json"))
        assert main(["compare", str(first), str(second)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_flags_regression_and_warn_only(self, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        assert (
            main(
                [
                    "trace",
                    "--tree",
                    "R3",
                    "-P",
                    "2",
                    "-o",
                    str(tmp_path / "base.trace.json"),
                    "--ledger-dir",
                    str(ledger_dir),
                ]
            )
            == 0
        )
        baseline = next(ledger_dir.glob("*.json"))
        worse = json.loads(baseline.read_text())
        worse["snapshot"]["work"]["nodes_examined"] *= 2
        worse_path = tmp_path / "worse.json"
        worse_path.write_text(json.dumps(worse))
        assert main(["compare", str(baseline), str(worse_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert (
            main(["compare", str(baseline), str(worse_path), "--warn-only"]) == 0
        )

    def test_compare_unknown_operand_exits_2(self, tmp_path, capsys):
        assert (
            main(
                ["compare", "feedface", "cafebabe", "--ledger-dir", str(tmp_path)]
            )
            == 2
        )

    def test_speedup_obs_writes_ledger_records(self, tmp_path, capsys):
        assert (
            main(
                [
                    "speedup",
                    "--backend",
                    "sim",
                    "--tree",
                    "R3",
                    "--processors",
                    "1",
                    "2",
                    "--obs",
                    "--obs-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        records = sorted(p.name for p in tmp_path.glob("*.json"))
        assert len(records) == 2
        assert any("sim_R3_P1" in name for name in records)
        assert any("sim_R3_P2" in name for name in records)
        assert "ledger:" in capsys.readouterr().out


class TestVerify:
    def test_verify_args(self):
        args = build_parser().parse_args(["verify", "--fast"])
        assert args.fast is True

    def test_verify_command_fast(self, capsys):
        assert main(["verify", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
        assert "every seeded race is caught" in out
        assert "verify: OK" in out

    def test_verify_deep_args(self):
        args = build_parser().parse_args(["verify", "--fast", "--deep"])
        assert args.deep is True
        assert args.sarif_out is None

    def test_verify_command_deep(self, capsys, tmp_path):
        sarif = tmp_path / "flow.sarif"
        assert main(["verify", "--fast", "--deep", "--sarif-out", str(sarif)]) == 0
        out = capsys.readouterr().out
        assert "no non-baselined findings" in out
        assert "seeded concurrency bugs caught" in out
        assert "verify: OK" in out
        assert sarif.exists()
        data = json.loads(sarif.read_text())
        assert data["runs"][0]["tool"]["driver"]["name"] == "repro-flow"
