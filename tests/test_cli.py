"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "11", "--scale", "reduced"])
        assert args.number == 11
        assert args.scale == "reduced"

    def test_figure_rejects_unknown_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_serial_command(self, capsys):
        assert main(["serial", "--tree", "R3", "--scale", "reduced"]) == 0
        out = capsys.readouterr().out
        assert "alpha-beta" in out and "serial ER" in out and "best serial" in out

    def test_figure_command_small_sweep(self, capsys):
        assert main(["figure", "11", "--processors", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "R1" in out and "efficiency" in out.lower()

    def test_nodes_figure(self, capsys):
        assert main(["figure", "13", "--processors", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "nodes generated" in out.lower()

    def test_losses_command(self, capsys):
        assert main(["losses", "--tree", "R3", "-P", "2"]) == 0
        out = capsys.readouterr().out
        assert "speculative fraction" in out

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_gantt_command(self, capsys):
        assert main(["gantt", "--tree", "R3", "-P", "4", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out and "legend" in out

    def test_baselines_command(self, capsys):
        assert main(["baselines", "--processors", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "aspiration" in out and "MWF" in out


class TestVerify:
    def test_verify_args(self):
        args = build_parser().parse_args(["verify", "--fast"])
        assert args.fast is True

    def test_verify_command_fast(self, capsys):
        assert main(["verify", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out
        assert "every seeded race is caught" in out
        assert "verify: OK" in out
