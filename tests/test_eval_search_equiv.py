"""End-to-end search equivalence under the batched-eval subsystem.

The eval-parity battery (``test_eval_differential.py``) pins
``batch_eval`` to the scalar evaluator element-wise; this file pins the
consequence that actually matters: turning batching or the eval cache on
— in any mode, on any backend — changes *no search outcome*.  Every root
value must equal the alpha-beta oracle's, and serial ER's principal
variation (the chosen move) must be identical across all eval modes.
Extends the ``test_tt_differential.py`` grid pattern.
"""

import pytest

from repro.core.er_parallel import parallel_er
from repro.core.serial_er import er_search
from repro.costmodel import DEFAULT_COST_MODEL
from repro.eval import EVAL_CACHE_MODES, Evaluator, make_eval_cache
from repro.games.base import SearchProblem
from repro.games.connect4 import ConnectFour
from repro.games.random_tree import IncrementalGameTree, RandomGameTree, SyntheticOrderedTree
from repro.parallel.multiproc import multiproc_er
from repro.parallel.threaded import threaded_er
from repro.search.alphabeta import alphabeta


def battery_problems() -> list[tuple[str, SearchProblem]]:
    problems: list[tuple[str, SearchProblem]] = [
        (f"random-{seed}", SearchProblem(RandomGameTree(3, 5, seed=seed), depth=5))
        for seed in range(2)
    ]
    problems.append(
        ("incremental", SearchProblem(IncrementalGameTree(3, 5, seed=4, noise=0.4), depth=5))
    )
    problems.append(
        ("ordered", SearchProblem(SyntheticOrderedTree(4, 5, seed=9), depth=5))
    )
    # A real game with genuine transpositions, so cache modes get hits.
    problems.append(
        ("connect4", SearchProblem(ConnectFour(width=5, height=4), depth=4))
    )
    return problems


BATTERY = battery_problems()
IDS = [name for name, _ in BATTERY]


def oracle(problem: SearchProblem) -> float:
    return alphabeta(problem).value


def serial_evaluator(problem: SearchProblem, mode: str) -> Evaluator | None:
    """The evaluator er_search gets for one cache mode (``off`` = batch only)."""
    cache = make_eval_cache(mode)
    view = None if cache is None else cache.view(0)
    return Evaluator(problem.game, DEFAULT_COST_MODEL, view)


class TestSerialEquivalence:
    @pytest.mark.parametrize("mode", EVAL_CACHE_MODES)
    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_value_matches_oracle(self, name, problem, mode):
        truth = oracle(problem)
        result = er_search(problem, evaluator=serial_evaluator(problem, mode))
        assert result.value == truth

    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_chosen_move_identical_across_modes(self, name, problem):
        base = er_search(problem)
        for mode in EVAL_CACHE_MODES:
            result = er_search(problem, evaluator=serial_evaluator(problem, mode))
            assert result.value == base.value
            assert result.pv == base.pv

    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_batching_moves_cost_not_values(self, name, problem):
        """Leaves stay counted (note_leaf), cost moves to batch primitives."""
        base = er_search(problem)
        batched = er_search(problem, evaluator=serial_evaluator(problem, "off"))
        assert batched.value == base.value
        assert batched.stats.batch_calls > 0
        assert batched.stats.leaf_evals > 0
        assert batched.stats.static_evals == 0


class TestSimEquivalence:
    @pytest.mark.parametrize("mode", EVAL_CACHE_MODES)
    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_every_mode_matches_oracle(self, name, problem, mode):
        truth = oracle(problem)
        cache = make_eval_cache(mode)
        for n in (1, 2, 4):
            assert parallel_er(problem, n, eval_cache=cache, batch_eval=True).value == truth

    @pytest.mark.parametrize("name,problem", BATTERY, ids=IDS)
    def test_batch_only_matches_oracle(self, name, problem):
        truth = oracle(problem)
        for n in (1, 2, 4):
            assert parallel_er(problem, n, batch_eval=True).value == truth

    def test_extras_carry_cache_counters(self):
        problem = SearchProblem(RandomGameTree(3, 4, seed=2), depth=4)
        result = parallel_er(problem, 2, eval_cache=make_eval_cache("shared"))
        for key in ("eval_hits", "eval_misses", "eval_stores", "eval_evictions", "eval_contended"):
            assert key in result.extras
        assert result.stats.eval_probes > 0

    def test_transposing_game_gets_cache_hits(self):
        problem = SearchProblem(ConnectFour(width=5, height=4), depth=4)
        cache = make_eval_cache("shared")
        result = parallel_er(problem, 2, eval_cache=cache)
        assert result.stats.eval_hits > 0
        assert cache is not None and cache.hits == result.stats.eval_hits


class TestThreadedEquivalence:
    @pytest.mark.parametrize("mode", EVAL_CACHE_MODES)
    @pytest.mark.parametrize(
        "name,problem",
        [BATTERY[0], BATTERY[4]],
        ids=[IDS[0], IDS[4]],
    )
    def test_every_mode_matches_oracle(self, name, problem, mode):
        truth = oracle(problem)
        cache = make_eval_cache(mode)
        for n in (1, 2, 4):
            value, _stats = threaded_er(problem, n, eval_cache=cache, batch_eval=True)
            assert value == truth


class TestMultiprocEquivalence:
    @pytest.mark.parametrize("mode", EVAL_CACHE_MODES)
    def test_every_mode_matches_oracle(self, mode):
        problem = SearchProblem(RandomGameTree(4, 5, seed=13), depth=5)
        truth = oracle(problem)
        result = multiproc_er(problem, 2, eval_cache_mode=mode, batch_eval=True)
        assert result.value == truth
        assert result.stats.batch_calls > 0
        if mode != "off":
            assert result.stats.eval_probes > 0

    def test_eval_modes_reject_foreign_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.errors import SearchError

        problem = SearchProblem(RandomGameTree(3, 4, seed=1), depth=4)
        with ProcessPoolExecutor(max_workers=1) as pool:
            with pytest.raises(SearchError):
                multiproc_er(problem, 1, executor=pool, eval_cache_mode="shared")
            with pytest.raises(SearchError):
                multiproc_er(problem, 1, executor=pool, batch_eval=True)
