"""Unit tests for the counter-based path hashing."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.games._hashing import path_hash, splitmix64, uniform_int
from repro.games.connect4 import ConnectFour
from repro.games.othello import Othello
from repro.games.othello import board as B

paths = st.lists(st.integers(min_value=0, max_value=63), max_size=8).map(tuple)


class TestSplitMix:
    def test_known_nonzero(self):
        assert splitmix64(0) != 0

    def test_is_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_output_in_64_bits(self, state):
        assert 0 <= splitmix64(state) < 2**64

    def test_avalanche_changes_many_bits(self):
        # Flipping one input bit should flip roughly half the output bits.
        a, b = splitmix64(42), splitmix64(43)
        flipped = (a ^ b).bit_count()
        assert 16 <= flipped <= 48


class TestPathHash:
    @given(paths, st.integers(min_value=0, max_value=1000))
    def test_deterministic(self, path, seed):
        assert path_hash(seed, path) == path_hash(seed, path)

    @given(paths)
    def test_seed_changes_hash(self, path):
        assert path_hash(1, path) != path_hash(2, path)

    @given(paths)
    def test_stream_changes_hash(self, path):
        assert path_hash(7, path, stream=0) != path_hash(7, path, stream=1)

    def test_sibling_paths_differ(self):
        assert path_hash(0, (0, 1)) != path_hash(0, (0, 2))

    def test_prefix_differs_from_extension(self):
        assert path_hash(0, (3,)) != path_hash(0, (3, 0))


class TestUniformInt:
    @given(paths, st.integers(-100, 100), st.integers(0, 200))
    def test_within_bounds(self, path, low, span):
        high = low + span
        value = uniform_int(0, path, low, high)
        assert low <= value <= high

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            uniform_int(0, (), 5, 4)

    def test_roughly_uniform(self):
        # Chi-square-free sanity check: all 8 buckets occupied over 4k draws.
        counts = [0] * 8
        for i in range(4000):
            counts[uniform_int(9, (i,), 0, 7)] += 1
        assert min(counts) > 4000 / 8 * 0.7
        assert max(counts) < 4000 / 8 * 1.3


# ---------------------------------------------------------------------------
# Incremental Zobrist updates (repro.cache keys): apply == full rehash,
# and re-applying the same XOR delta undoes it.
# ---------------------------------------------------------------------------

class TestIncrementalZobristConnect4:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=14))
    def test_apply_matches_full_rehash(self, picks):
        """Playing any move sequence, the incremental key tracks hash_key."""
        game = ConnectFour()
        position = game.root()
        key = game.hash_key(position)
        for pick in picks:
            if game.opponent_just_won(position):
                break
            columns = game.legal_columns(position)
            if not columns:
                break
            column = columns[pick % len(columns)]
            key = game.hash_after_move(position, column, key)
            position = game.play(position, column)
            assert key == game.hash_key(position)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=10))
    def test_reapplying_delta_undoes(self, picks):
        """XOR involution: the same move delta applied twice cancels."""
        game = ConnectFour()
        position = game.root()
        for pick in picks:
            columns = game.legal_columns(position)
            if not columns:
                break
            position = game.play(position, columns[pick % len(columns)])
        key = game.hash_key(position)
        for column in game.legal_columns(position):
            once = game.hash_after_move(position, column, key)
            assert once != key
            assert game.hash_after_move(position, column, once) == key

    def test_children_order_matches_legal_columns(self):
        """The pairing the incremental tests rely on."""
        game = ConnectFour()
        position = game.play(game.root(), 3)
        children = game.children(position)
        for column, child in zip(game.legal_columns(position), children):
            assert game.play(position, column) == child


class TestIncrementalZobristOthello:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=10))
    def test_apply_matches_full_rehash(self, picks):
        """Every legal move's incremental key equals the child's rehash,
        including forced passes."""
        game = Othello()
        position = game.root()
        for pick in picks:
            key = Othello.hash_key(position)
            children = game.children(position)
            if not children:
                break
            moves = B.legal_moves(position.own, position.opp)
            if moves == 0:  # forced pass: one child, side flip only
                assert Othello.hash_after_pass(key) == Othello.hash_key(children[0])
                position = children[0]
                continue
            move_bits = list(B.bits(moves))
            assert len(move_bits) == len(children)
            for move, child in zip(move_bits, children):
                assert Othello.hash_after_move(position, move, key) == Othello.hash_key(child)
            position = children[pick % len(children)]

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=6))
    def test_reapplying_delta_undoes(self, picks):
        game = Othello()
        position = game.root()
        for pick in picks:
            children = game.children(position)
            if not children:
                break
            position = children[pick % len(children)]
        key = Othello.hash_key(position)
        for move in B.bits(B.legal_moves(position.own, position.opp)):
            once = Othello.hash_after_move(position, move, key)
            assert once != key
            assert Othello.hash_after_move(position, move, once) == key
