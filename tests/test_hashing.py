"""Unit tests for the counter-based path hashing."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.games._hashing import path_hash, splitmix64, uniform_int

paths = st.lists(st.integers(min_value=0, max_value=63), max_size=8).map(tuple)


class TestSplitMix:
    def test_known_nonzero(self):
        assert splitmix64(0) != 0

    def test_is_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_output_in_64_bits(self, state):
        assert 0 <= splitmix64(state) < 2**64

    def test_avalanche_changes_many_bits(self):
        # Flipping one input bit should flip roughly half the output bits.
        a, b = splitmix64(42), splitmix64(43)
        flipped = (a ^ b).bit_count()
        assert 16 <= flipped <= 48


class TestPathHash:
    @given(paths, st.integers(min_value=0, max_value=1000))
    def test_deterministic(self, path, seed):
        assert path_hash(seed, path) == path_hash(seed, path)

    @given(paths)
    def test_seed_changes_hash(self, path):
        assert path_hash(1, path) != path_hash(2, path)

    @given(paths)
    def test_stream_changes_hash(self, path):
        assert path_hash(7, path, stream=0) != path_hash(7, path, stream=1)

    def test_sibling_paths_differ(self):
        assert path_hash(0, (0, 1)) != path_hash(0, (0, 2))

    def test_prefix_differs_from_extension(self):
        assert path_hash(0, (3,)) != path_hash(0, (3, 0))


class TestUniformInt:
    @given(paths, st.integers(-100, 100), st.integers(0, 200))
    def test_within_bounds(self, path, low, span):
        high = low + span
        value = uniform_int(0, path, low, high)
        assert low <= value <= high

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            uniform_int(0, (), 5, 4)

    def test_roughly_uniform(self):
        # Chi-square-free sanity check: all 8 buckets occupied over 4k draws.
        counts = [0] * 8
        for i in range(4000):
            counts[uniform_int(9, (i,), 0, 7)] += 1
        assert min(counts) > 4000 / 8 * 0.7
        assert max(counts) < 4000 / 8 * 1.3
