"""Invariant lint: the repo passes, and seeded violations are caught.

``check_repo`` gating the real tree is only trustworthy if the rules
actually fire, so each rule is also exercised on a synthetic source with
a planted violation.
"""

from __future__ import annotations

import textwrap

from repro.verify.staticcheck import (
    LintFinding,
    check_critpath_coverage,
    check_eval_parity_coverage,
    check_file,
    check_lock_discipline,
    check_obs_coverage,
    check_repo,
)


def _src(body: str) -> str:
    return textwrap.dedent(body).lstrip("\n")


# ---------------------------------------------------------------------------
# The real repository satisfies every invariant.
# ---------------------------------------------------------------------------


def test_repo_is_clean() -> None:
    findings = check_repo()
    assert findings == [], "\n".join(str(f) for f in findings)


# ---------------------------------------------------------------------------
# VER001: lock discipline in worker generators.
# ---------------------------------------------------------------------------


def test_ver001_unlocked_attribute_store() -> None:
    source = _src(
        """
        def _worker(ctx, node):
            yield Compute(1.0)
            node.done = True
        """
    )
    findings = check_lock_discipline("er_parallel.py", source)
    assert any("no lock held" in f.message for f in findings)


def test_ver001_locked_store_is_fine() -> None:
    source = _src(
        """
        def _worker(ctx, node):
            yield Acquire(ctx.tree_lock)
            node.done = True
            yield Release(ctx.tree_lock)
        """
    )
    assert check_lock_discipline("er_parallel.py", source) == []


def test_ver001_generator_exits_holding_lock() -> None:
    source = _src(
        """
        def _worker(ctx):
            yield Acquire(ctx.tree_lock)
            yield Compute(1.0)
        """
    )
    findings = check_lock_discipline("er_parallel.py", source)
    assert any("can finish still holding" in f.message for f in findings)


def test_ver001_release_without_acquire() -> None:
    source = _src(
        """
        def _worker(ctx):
            yield Release(ctx.tree_lock)
        """
    )
    findings = check_lock_discipline("er_parallel.py", source)
    assert any("without acquiring" in f.message for f in findings)


def test_ver001_wait_while_holding_lock() -> None:
    source = _src(
        """
        def _worker(ctx):
            yield Acquire(ctx.heap_lock)
            yield WaitWork(ctx.signal)
            yield Release(ctx.heap_lock)
        """
    )
    findings = check_lock_discipline("er_parallel.py", source)
    assert any("deadlock" in f.message for f in findings)


def test_ver001_branches_must_agree_on_held_locks() -> None:
    source = _src(
        """
        def _worker(ctx, flag):
            if flag:
                yield Acquire(ctx.tree_lock)
            else:
                yield Compute(1.0)
            yield Compute(1.0)
        """
    )
    findings = check_lock_discipline("er_parallel.py", source)
    assert any("branches disagree" in f.message for f in findings)


def test_ver001_tree_method_needs_tree_lock() -> None:
    source = _src(
        """
        def _worker(ctx, node, stats):
            yield Acquire(ctx.heap_lock)
            ctx.combine(node, stats)
            yield Release(ctx.heap_lock)
        """
    )
    findings = check_lock_discipline("er_parallel.py", source)
    assert any("without the tree lock" in f.message for f in findings)


# ---------------------------------------------------------------------------
# VER003: determinism (no wall clock, no unseeded randomness).
# ---------------------------------------------------------------------------


def test_ver003_wall_clock_flagged() -> None:
    source = _src(
        """
        import time

        def cost():
            return time.time()
        """
    )
    findings = check_file("sim/fake.py", source=source, rules={"VER003"})
    assert any(f.rule == "VER003" and "wall-clock" in f.message for f in findings)


def test_ver003_unseeded_randomness_flagged_seeded_allowed() -> None:
    source = _src(
        """
        import random

        def jitter():
            return random.random()

        def rng(seed):
            return random.Random(seed)
        """
    )
    findings = check_file("core/fake.py", source=source, rules={"VER003"})
    assert len(findings) == 1 and "unseeded" in findings[0].message


# ---------------------------------------------------------------------------
# VER004: multiproc boundary picklable-by-construction.
# ---------------------------------------------------------------------------


def test_ver004_lambda_submission_flagged() -> None:
    source = _src(
        """
        def run(pool, payload):
            return pool.submit(lambda: payload)
        """
    )
    findings = check_file("parallel/multiproc_fake.py", source=source, rules={"VER004"})
    assert any(f.rule == "VER004" for f in findings)


def test_ver004_module_function_submission_allowed() -> None:
    source = _src(
        """
        def _run_task(payload):
            return payload

        def run(pool, payload):
            return pool.submit(_run_task, payload)
        """
    )
    assert check_file("parallel/multiproc_fake.py", source=source, rules={"VER004"}) == []


# ---------------------------------------------------------------------------
# VER005: metrics registry covers every op kind and event type.
# ---------------------------------------------------------------------------

_OPS = _src(
    """
    class Op:
        pass

    @dataclass(frozen=True)
    class Compute(Op):
        units: float

    @dataclass(frozen=True)
    class Acquire(Op):
        lock: object
    """
)

_EVENTS = _src(
    """
    EV_QUEUE_DEPTH = "queue-depth"
    EV_NODE_DONE = "node-done"
    """
)


def _obs_findings(registry: str) -> list[LintFinding]:
    return check_obs_coverage(
        "ops.py", _OPS, "events.py", _EVENTS, "registry.py", _src(registry)
    )


def test_ver005_full_coverage_passes() -> None:
    findings = _obs_findings(
        """
        OP_METRICS = {"Compute": "sim.ops.compute", "Acquire": "sim.ops.acquire"}
        EVENT_METRICS = {
            events.EV_QUEUE_DEPTH: "queue.depth",
            events.EV_NODE_DONE: "nodes.done",
        }
        """
    )
    assert findings == [], "\n".join(str(f) for f in findings)


def test_ver005_uncovered_op_flagged() -> None:
    findings = _obs_findings(
        """
        OP_METRICS = {"Compute": "sim.ops.compute"}
        EVENT_METRICS = {
            events.EV_QUEUE_DEPTH: "queue.depth",
            events.EV_NODE_DONE: "nodes.done",
        }
        """
    )
    assert any("op Acquire has no OP_METRICS entry" in f.message for f in findings)


def test_ver005_uncovered_event_and_dead_mappings_flagged() -> None:
    findings = _obs_findings(
        """
        OP_METRICS = {
            "Compute": "sim.ops.compute",
            "Acquire": "sim.ops.acquire",
            "Ghost": "sim.ops.ghost",
        }
        EVENT_METRICS = {
            events.EV_QUEUE_DEPTH: "queue.depth",
            events.EV_GHOST: "ghosts",
            "literal-key": "nope",
        }
        """
    )
    messages = [f.message for f in findings]
    assert any("'Ghost'" in m and "dead mapping" in m for m in messages)
    assert any("events.EV_GHOST" in m for m in messages)
    assert any("must reference an events.EV_* constant" in m for m in messages)
    assert any("EV_NODE_DONE has no EVENT_METRICS entry" in m for m in messages)


def test_ver005_missing_mapping_dict_flagged() -> None:
    findings = _obs_findings("OTHER = 1")
    assert any("OP_METRICS dict literal not found" in f.message for f in findings)
    assert any("EVENT_METRICS dict literal not found" in f.message for f in findings)


# ---------------------------------------------------------------------------
# VER006: critical-path attribution covers every op kind.
# ---------------------------------------------------------------------------


def _critpath_findings(critpath: str) -> list[LintFinding]:
    return check_critpath_coverage("ops.py", _OPS, "critpath.py", _src(critpath))


def test_ver006_full_coverage_passes() -> None:
    findings = _critpath_findings(
        """
        OP_ATTRIBUTION = {"Compute": "busy", "Acquire": "interference"}
        """
    )
    assert findings == [], "\n".join(str(f) for f in findings)


def test_ver006_uncovered_op_flagged() -> None:
    findings = _critpath_findings('OP_ATTRIBUTION = {"Compute": "busy"}')
    assert any("op Acquire has no OP_ATTRIBUTION entry" in f.message for f in findings)


def test_ver006_dead_mapping_and_bad_class_flagged() -> None:
    findings = _critpath_findings(
        """
        OP_ATTRIBUTION = {
            "Compute": "busy",
            "Acquire": "waiting-around",
            "Ghost": "busy",
        }
        """
    )
    messages = [f.message for f in findings]
    assert any("'Ghost'" in m and "dead mapping" in m for m in messages)
    assert any("must be one of" in m for m in messages)


def test_ver006_non_literal_key_flagged() -> None:
    findings = _critpath_findings(
        'OP_ATTRIBUTION = {Compute: "busy", "Acquire": "interference"}'
    )
    messages = [f.message for f in findings]
    assert any("must be a string literal" in m for m in messages)
    assert any("op Compute has no OP_ATTRIBUTION entry" in m for m in messages)


def test_ver006_missing_mapping_dict_flagged() -> None:
    findings = _critpath_findings("OTHER = 1")
    assert any("OP_ATTRIBUTION dict literal not found" in f.message for f in findings)


# ---------------------------------------------------------------------------
# VER007: the differential battery names every batch_eval implementation.
# ---------------------------------------------------------------------------

_GAME_WITH_BATCH = _src(
    """
    class Checkers:
        def evaluate(self, position):
            return 0.0

        def batch_eval(self, positions):
            return [0.0 for _ in positions]

    class Draughts:
        def batch_eval(self, positions):
            return [1.0 for _ in positions]
    """
)


def test_ver007_uncovered_implementation_flagged() -> None:
    battery = "def test_checkers():\n    game = Checkers()\n"
    findings = check_eval_parity_coverage(
        [("games/checkers.py", _GAME_WITH_BATCH)], battery
    )
    assert len(findings) == 1
    assert findings[0].rule == "VER007"
    assert "Draughts" in findings[0].message
    assert "never named" in findings[0].message


def test_ver007_full_coverage_passes() -> None:
    battery = "GAMES = [Checkers, Draughts]\n"
    assert (
        check_eval_parity_coverage([("games/checkers.py", _GAME_WITH_BATCH)], battery)
        == []
    )


def test_ver007_protocol_declaration_skipped() -> None:
    source = _src(
        """
        class Game(Protocol):
            def batch_eval(self, positions):
                ...

        class Board(typing.Protocol):
            def batch_eval(self, positions):
                ...
        """
    )
    assert check_eval_parity_coverage([("games/base.py", source)], "") == []


def test_ver007_class_without_batch_eval_ignored() -> None:
    source = _src(
        """
        class ScalarOnly:
            def evaluate(self, position):
                return 0.0
        """
    )
    assert check_eval_parity_coverage([("games/scalar.py", source)], "") == []


# ---------------------------------------------------------------------------
# VER008: wall clock / randomness only through sanctioned seams.
# ---------------------------------------------------------------------------


def test_ver008_bare_clock_reference_flagged() -> None:
    # VER003 only catches *calls*; a stored default must trip VER008.
    source = _src(
        """
        import time

        def make_timer(clock=None):
            return clock if clock is not None else time.perf_counter
        """
    )
    findings = check_file("sim/fake.py", source=source, rules={"VER008"})
    assert [f.rule for f in findings] == ["VER008"]
    assert "time.perf_counter" in findings[0].message
    assert check_file("sim/fake.py", source=source, rules={"VER003"}) == []


def test_ver008_random_call_flagged_seeded_random_allowed() -> None:
    source = _src(
        """
        import random

        def jitter():
            return random.random()

        def rng(seed):
            return random.Random(seed)
        """
    )
    findings = check_file("core/fake.py", source=source, rules={"VER008"})
    assert [f.rule for f in findings] == ["VER008"]
    assert findings[0].line == 4


def test_ver008_sanctioned_seams_allowed() -> None:
    # The event bus's injectable-clock default and the ledger timestamp
    # are the documented injection points.
    source = _src(
        """
        import time

        class EventBus:
            def __init__(self, clock=None):
                self._clock = clock if clock is not None else time.perf_counter

            def use_clock(self, clock):
                prev = self._clock
                self._clock = clock if clock is not None else time.perf_counter
                return prev
        """
    )
    assert check_file("obs/events.py", source=source, rules={"VER008"}) == []
    # The same reference outside its sanctioned function is flagged.
    source_bad = source.replace("def use_clock", "def other_method")
    findings = check_file("obs/events.py", source=source_bad, rules={"VER008"})
    assert [f.rule for f in findings] == ["VER008"]


def test_ver008_pragma_suppression() -> None:
    source = _src(
        """
        import time

        def stamp():
            return time.time()  # verify: ok
        """
    )
    assert check_file("obs/fake.py", source=source, rules={"VER008"}) == []


# ---------------------------------------------------------------------------
# Pragmas and rule inference.
# ---------------------------------------------------------------------------


def test_pragma_suppresses_a_finding() -> None:
    source = _src(
        """
        import time

        def cost():
            return time.time()  # verify: ok
        """
    )
    assert check_file("sim/fake.py", source=source, rules={"VER003"}) == []


def test_rules_inferred_from_filename() -> None:
    source = _src(
        """
        import time

        def _worker(ctx, node):
            yield Compute(1.0)
            node.done = time.time()
        """
    )
    # er_parallel.py gets VER001 + VER003 by inference.
    rules = {f.rule for f in check_file("er_parallel.py", source=source)}
    assert rules == {"VER001", "VER003"}
    # multiproc files get VER004 and shed VER003 (coordinator measures wall time).
    mp = check_file("multiproc.py", source=source)
    assert all(f.rule != "VER003" for f in mp)


def test_finding_str_is_tool_style() -> None:
    finding = LintFinding("VER001", "er_parallel.py", 12, "boom")
    assert str(finding) == "er_parallel.py:12: VER001: boom"


# ---------------------------------------------------------------------------
# VER009: real-backend events are metered and served live.
# ---------------------------------------------------------------------------

_EVENTS_SRC = _src(
    """
    EV_TASK_SUBMIT = "task-submit"
    EV_TASK_RESULT = "task-result"
    """
)

_REGISTRY_SRC = _src(
    """
    EVENT_METRICS = {
        events.EV_TASK_SUBMIT: "tasks.submitted",
        events.EV_TASK_RESULT: "tasks.completed",
    }

    def feed_event(registry, event):
        pass

    def aggregate(bus):
        registry = None
        for event in bus.events:
            feed_event(registry, event)
        return registry
    """
)


def _ver009(parallel_src: str, registry_src: str = _REGISTRY_SRC):
    from repro.verify.staticcheck import check_parallel_event_coverage

    return check_parallel_event_coverage(
        [("multiproc.py", _src(parallel_src))],
        "events.py",
        _EVENTS_SRC,
        "registry.py",
        registry_src,
    )


def test_ver009_covered_emissions_pass() -> None:
    findings = _ver009(
        """
        def run(bus):
            bus.emit(_obs.EV_TASK_SUBMIT, kind="explore")
            bus.emit(_obs.EV_TASK_RESULT, worker=0)
        """
    )
    assert findings == []


def test_ver009_undefined_event_flagged() -> None:
    findings = _ver009(
        """
        def run(bus):
            bus.emit(_obs.EV_TASK_CANCELLED, task=3)
        """
    )
    assert any(
        f.rule == "VER009" and "not defined in obs/events.py" in f.message
        for f in findings
    )


def test_ver009_unmetered_event_flagged() -> None:
    events_src = _EVENTS_SRC + 'EV_HEAP_WAIT = "heap-wait"\n'
    from repro.verify.staticcheck import check_parallel_event_coverage

    findings = check_parallel_event_coverage(
        [("multiproc.py", _src("def run(bus):\n    bus.emit(EV_HEAP_WAIT)\n"))],
        "events.py",
        events_src,
        "registry.py",
        _REGISTRY_SRC,
    )
    assert any(
        f.rule == "VER009" and "EVENT_METRICS has no entry" in f.message
        for f in findings
    )


def test_ver009_missing_feed_event_flagged() -> None:
    registry_src = _src(
        """
        EVENT_METRICS = {
            events.EV_TASK_SUBMIT: "tasks.submitted",
            events.EV_TASK_RESULT: "tasks.completed",
        }
        """
    )
    findings = _ver009("def run(bus):\n    bus.emit(EV_TASK_RESULT)\n", registry_src)
    assert any("defines no feed_event" in f.message for f in findings)


def test_ver009_aggregate_bypassing_feed_event_flagged() -> None:
    registry_src = _src(
        """
        EVENT_METRICS = {
            events.EV_TASK_SUBMIT: "tasks.submitted",
            events.EV_TASK_RESULT: "tasks.completed",
        }

        def feed_event(registry, event):
            pass

        def aggregate(bus):
            return None
        """
    )
    findings = _ver009("def run(bus):\n    bus.emit(EV_TASK_RESULT)\n", registry_src)
    assert any(
        "aggregate() does not call feed_event" in f.message for f in findings
    )
