"""Tests for the real-thread ER executor (correctness, not speed)."""

import pytest

from repro.core.er_parallel import ERConfig
from repro.errors import SearchError
from repro.games.base import SearchProblem
from repro.games.tictactoe import TicTacToe
from repro.parallel.threaded import threaded_er
from repro.search.negamax import negamax

from conftest import random_problem


class TestCorrectness:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 8])
    def test_matches_negamax(self, n_threads):
        for seed in range(3):
            problem = random_problem(3, 4, seed)
            truth = negamax(problem).value
            value, stats = threaded_er(problem, n_threads, config=ERConfig(serial_depth=2))
            assert value == truth
            assert stats.nodes_generated > 0

    def test_many_seeds_two_threads(self):
        """Broad sweep: real interleavings differ run to run; any protocol
        race shows up as a wrong value or a hang here."""
        for seed in range(10):
            problem = random_problem(2, 5, seed)
            truth = negamax(problem).value
            value, _ = threaded_er(problem, 2, config=ERConfig(serial_depth=3))
            assert value == truth

    def test_fully_parallel_no_serial_cutover(self):
        problem = random_problem(3, 4, seed=6)
        truth = negamax(problem).value
        value, _ = threaded_er(problem, 4)  # default: heap all the way down
        assert value == truth

    def test_tictactoe(self):
        problem = SearchProblem(TicTacToe(), depth=4)
        truth = negamax(problem).value
        value, _ = threaded_er(problem, 3, config=ERConfig(serial_depth=2))
        assert value == truth

    def test_repeated_runs_stable(self):
        problem = random_problem(3, 4, seed=0)
        truth = negamax(problem).value
        for _ in range(5):
            value, _ = threaded_er(problem, 4, config=ERConfig(serial_depth=2))
            assert value == truth


class TestValidation:
    def test_rejects_zero_threads(self):
        with pytest.raises(SearchError):
            threaded_er(random_problem(2, 2, 0), 0)
