"""Cross-cutting property-based fuzzing.

One strategy generates arbitrary explicit game trees; another generates
arbitrary parallel-ER configurations.  Every algorithm in the package
must produce the negmax value on every combination — the broadest
correctness net in the suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.er_parallel import ERConfig, parallel_er
from repro.core.er_queues import SpecOrder
from repro.core.serial_er import er_search
from repro.costmodel import CostModel
from repro.games.explicit import negmax_of_spec
from repro.search.alphabeta import alphabeta
from repro.search.minimal_tree import minimal_leaf_count_formula
from repro.search.negamax import negamax
from repro.search.negascout import negascout
from repro.search.transposition import TranspositionTable, alphabeta_tt

from conftest import explicit_problem

leaf = st.integers(min_value=-100, max_value=100)
tree_spec = st.recursive(leaf, lambda c: st.lists(c, min_size=1, max_size=4), max_leaves=30)

er_configs = st.builds(
    ERConfig,
    serial_depth=st.integers(min_value=0, max_value=6),
    parallel_refutation=st.booleans(),
    early_choice=st.booleans(),
    multiple_e_children=st.booleans(),
    deep_cutoff_checks=st.booleans(),
    max_e_children=st.integers(min_value=1, max_value=4),
    distributed_heap=st.booleans(),
    spec_order=st.sampled_from(list(SpecOrder)),
    chunk_units=st.sampled_from([50.0, 400.0, 10_000.0]),
)

cost_models = st.builds(
    CostModel,
    expand_base=st.floats(min_value=0.0, max_value=10.0),
    expand_per_child=st.floats(min_value=0.0, max_value=5.0),
    static_eval=st.floats(min_value=0.1, max_value=100.0),
    heap_op=st.floats(min_value=0.0, max_value=5.0),
    combine_step=st.floats(min_value=0.0, max_value=5.0),
    bookkeeping=st.floats(min_value=0.0, max_value=2.0),
)


class TestSerialAlgorithmsFuzz:
    @given(tree_spec)
    def test_every_serial_algorithm_agrees(self, spec):
        problem = explicit_problem(spec)
        truth = negmax_of_spec(spec)
        assert alphabeta(problem).value == truth
        assert alphabeta(problem, deep_cutoffs=False).value == truth
        assert er_search(problem).value == truth
        assert negascout(problem).value == truth
        assert alphabeta_tt(problem, TranspositionTable()).value == truth


class TestParallelERFuzz:
    @given(tree_spec, er_configs, st.integers(min_value=1, max_value=9))
    @settings(max_examples=60)
    def test_any_config_any_processor_count(self, spec, config, n):
        problem = explicit_problem(spec)
        result = parallel_er(problem, n, config=config)
        assert result.value == negmax_of_spec(spec)

    @given(tree_spec, cost_models)
    @settings(max_examples=30)
    def test_any_cost_model(self, spec, cost_model):
        """Costs affect the schedule, never the value."""
        problem = explicit_problem(spec)
        result = parallel_er(
            problem, 4, config=ERConfig(serial_depth=2), cost_model=cost_model
        )
        assert result.value == negmax_of_spec(spec)

    @given(tree_spec, er_configs)
    @settings(max_examples=30)
    def test_determinism_under_any_config(self, spec, config):
        problem = explicit_problem(spec)
        a = parallel_er(problem, 5, config=config)
        b = parallel_er(problem, 5, config=config)
        assert a.sim_time == b.sim_time
        assert a.stats.nodes_generated == b.stats.nodes_generated


def _nest(values, degree):
    """Fold a flat leaf list into a complete ``degree``-ary tree spec."""
    nodes = list(values)
    while len(nodes) > 1:
        nodes = [nodes[i : i + degree] for i in range(0, len(nodes), degree)]
    return nodes[0]


@st.composite
def uniform_trees(draw):
    """Complete d-ary trees — the shape the minimal-tree bound is stated for."""
    degree = draw(st.integers(min_value=2, max_value=3))
    height = draw(st.integers(min_value=1, max_value=3))
    count = degree**height
    values = draw(st.lists(leaf, min_size=count, max_size=count))
    return degree, height, _nest(values, degree)


class TestMinimalTreeBoundFuzz:
    """No correct algorithm can examine fewer leaves than the minimal tree
    (paper Section 2.2), and parallelism must never change the value."""

    @given(uniform_trees(), er_configs, st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_parallel_er_matches_negamax_above_the_bound(self, tree, config, n):
        degree, height, spec = tree
        problem = explicit_problem(spec)
        result = parallel_er(problem, n, config=config)
        assert result.value == negamax(problem).value
        assert result.stats.leaf_evals >= minimal_leaf_count_formula(degree, height)

    @given(uniform_trees())
    @settings(max_examples=30)
    def test_serial_searches_respect_the_bound(self, tree):
        degree, height, spec = tree
        problem = explicit_problem(spec)
        bound = minimal_leaf_count_formula(degree, height)
        truth = negamax(problem).value
        for result in (alphabeta(problem), er_search(problem)):
            assert result.value == truth
            assert result.stats.leaf_evals >= bound


class TestAccountingInvariantsFuzz:
    @given(tree_spec, er_configs, st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_time_accounting_closes(self, spec, config, n):
        """busy + lock-wait + starve + tail-idle == P * makespan."""
        problem = explicit_problem(spec)
        result = parallel_er(problem, n, config=config)
        report = result.report
        tail = sum(report.makespan - p.finish_time for p in report.processors)
        accounted = (
            report.total_busy + report.total_lock_wait + report.total_starve_wait + tail
        )
        assert abs(accounted - report.makespan * n) < 1e-6 * max(1.0, report.makespan * n)

    @given(tree_spec, st.integers(min_value=1, max_value=6))
    @settings(max_examples=30)
    def test_parallel_trace_covers_root_region(self, spec, n):
        problem = explicit_problem(spec)
        result = parallel_er(problem, n, config=ERConfig(serial_depth=3), trace=True)
        assert () in result.stats.trace
        # The root's first child is always examined (it is mandatory work).
        if problem.game.children(problem.game.root()):
            assert any(p == (0,) or (p and p[0] == 0) for p in result.stats.trace)