"""Golden-byte tests for the flow analyzer's SARIF exporter.

The SARIF log is a CI artifact consumed byte-for-byte by code-scanning
uploads, so the exporter must be deterministic: same findings in, same
bytes out, across runs and machines.  The golden file pins the exact
serialization of the on_spec regression fixture's findings.

Regenerate after an intentional schema change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_verify_flow_sarif.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.verify.flow import RULES, analyze_sources
from repro.verify.flow.sarif import to_sarif, to_sarif_bytes

GOLDEN = Path(__file__).parent / "golden" / "flow_findings.sarif"
FIXTURE = Path(__file__).parent / "fixtures" / "flow" / "on_spec_race.py"


def _fixture_findings():
    return analyze_sources({"tests/fixtures/flow/on_spec_race.py": FIXTURE.read_text()})


def _check_golden(path: Path, data: bytes) -> None:
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
    assert path.exists(), f"{path.name} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    assert data == path.read_bytes(), (
        f"{path.name} changed; if intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_sarif_bytes_match_golden() -> None:
    _check_golden(GOLDEN, to_sarif_bytes(_fixture_findings()))


def test_sarif_bytes_are_deterministic() -> None:
    findings = _fixture_findings()
    assert to_sarif_bytes(findings) == to_sarif_bytes(list(reversed(findings)))


def test_sarif_shape() -> None:
    log = to_sarif(_fixture_findings())
    assert log["version"] == "2.1.0"
    runs = log["runs"]
    assert isinstance(runs, list) and len(runs) == 1
    run = runs[0]
    driver = run["tool"]["driver"]  # type: ignore[index]
    assert driver["name"] == "repro-flow"
    assert {r["id"] for r in driver["rules"]} == set(RULES)
    results = run["results"]  # type: ignore[index]
    assert results, "fixture must produce findings"
    for result in results:
        assert result["ruleId"] in RULES
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("on_spec_race.py")
        assert location["region"]["startLine"] >= 1
        assert "reproFlow/v1" in result["partialFingerprints"]


def test_sarif_round_trips_through_json() -> None:
    data = to_sarif_bytes(_fixture_findings())
    parsed = json.loads(data)
    assert parsed["runs"][0]["results"]
