"""Unit tests for the Othello bitboard, cross-checked against a naive
array-based reference implementation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IllegalMoveError
from repro.games.othello import board as B

# ---------------------------------------------------------------------------
# Naive reference implementation (obviously-correct, array-based).
# ---------------------------------------------------------------------------

DIRS = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]


def to_grid(own: int, opp: int):
    grid = [[0] * 8 for _ in range(8)]
    for r in range(8):
        for c in range(8):
            bit = 1 << (r * 8 + c)
            if own & bit:
                grid[r][c] = 1
            elif opp & bit:
                grid[r][c] = 2
    return grid


def naive_legal_moves(own: int, opp: int) -> int:
    grid = to_grid(own, opp)
    moves = 0
    for r in range(8):
        for c in range(8):
            if grid[r][c] != 0:
                continue
            for dr, dc in DIRS:
                rr, cc = r + dr, c + dc
                seen_opp = False
                while 0 <= rr < 8 and 0 <= cc < 8 and grid[rr][cc] == 2:
                    seen_opp = True
                    rr += dr
                    cc += dc
                if seen_opp and 0 <= rr < 8 and 0 <= cc < 8 and grid[rr][cc] == 1:
                    moves |= 1 << (r * 8 + c)
                    break
    return moves


def naive_flips(own: int, opp: int, move: int) -> int:
    grid = to_grid(own, opp)
    index = move.bit_length() - 1
    r, c = divmod(index, 8)
    flips = 0
    for dr, dc in DIRS:
        rr, cc = r + dr, c + dc
        line = 0
        while 0 <= rr < 8 and 0 <= cc < 8 and grid[rr][cc] == 2:
            line |= 1 << (rr * 8 + cc)
            rr += dr
            cc += dc
        if line and 0 <= rr < 8 and 0 <= cc < 8 and grid[rr][cc] == 1:
            flips |= line
    return flips


def random_position(rng_bits: int):
    """Derive a plausible random position from 128 bits of entropy."""
    own = rng_bits & B.FULL
    opp = (rng_bits >> 64) & B.FULL & ~own
    return own, opp


# ---------------------------------------------------------------------------


class TestStartPosition:
    def test_black_has_four_opening_moves(self):
        moves = B.legal_moves(B.BLACK_START, B.WHITE_START)
        names = {B.square_name(bit) for bit in B.bits(moves)}
        assert names == {"d3", "c4", "f5", "e6"}

    def test_opening_move_flips_one_disc(self):
        move = B.square_bit("d3")
        flips = B.flips_for_move(B.BLACK_START, B.WHITE_START, move)
        assert flips.bit_count() == 1
        assert flips == B.square_bit("d4")


class TestApplyMove:
    def test_occupied_square_rejected(self):
        with pytest.raises(IllegalMoveError):
            B.apply_move(B.BLACK_START, B.WHITE_START, B.square_bit("d4"))

    def test_non_flipping_move_rejected(self):
        with pytest.raises(IllegalMoveError):
            B.apply_move(B.BLACK_START, B.WHITE_START, B.square_bit("a1"))

    def test_disc_conservation(self):
        move = B.square_bit("d3")
        own2, opp2 = B.apply_move(B.BLACK_START, B.WHITE_START, move)
        assert (own2 | opp2).bit_count() == 5
        assert own2 & opp2 == 0


class TestAgainstNaiveReference:
    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_legal_moves_match(self, bits):
        own, opp = random_position(bits)
        assert B.legal_moves(own, opp) == naive_legal_moves(own, opp)

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_flips_match_for_every_legal_move(self, bits):
        own, opp = random_position(bits)
        moves = B.legal_moves(own, opp)
        for move in B.bits(moves):
            assert B.flips_for_move(own, opp, move) == naive_flips(own, opp, move)


class TestSquareNames:
    def test_corners(self):
        assert B.square_name(1 << 0) == "a1"
        assert B.square_name(1 << 7) == "h1"
        assert B.square_name(1 << 56) == "a8"
        assert B.square_name(1 << 63) == "h8"

    @given(st.integers(0, 63))
    def test_round_trip(self, index):
        bit = 1 << index
        assert B.square_bit(B.square_name(bit)) == bit

    def test_bad_name(self):
        with pytest.raises(ValueError):
            B.square_bit("z9")


class TestHelpers:
    def test_bits_iterates_ascending(self):
        board = (1 << 3) | (1 << 10) | (1 << 63)
        assert list(B.bits(board)) == [1 << 3, 1 << 10, 1 << 63]

    def test_frontier_of_start(self):
        # All four starting discs touch empty squares.
        assert B.frontier(B.BLACK_START, B.WHITE_START) == B.BLACK_START

    def test_stable_edges_requires_corner(self):
        # An edge run not anchored at a corner is not stable.
        own = B.square_bit("c1") | B.square_bit("d1")
        assert B.stable_edge_discs(own, 0) == 0

    def test_stable_edges_from_corner(self):
        own = B.square_bit("a1") | B.square_bit("b1") | B.square_bit("c1") | B.square_bit("a2")
        stable = B.stable_edge_discs(own, 0)
        assert stable == own

    def test_render_marks_legal_squares(self):
        text = B.render(B.BLACK_START, B.WHITE_START, black_to_move=True)
        assert text.count("*") == 4
        assert "black to move" in text
