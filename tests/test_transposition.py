"""Tests for transposition tables and table-driven search."""

import pytest

from repro.errors import SearchError
from repro.games.base import SearchProblem
from repro.games.othello import Othello
from repro.games.random_tree import IncrementalGameTree, RandomGameTree
from repro.games.tictactoe import TicTacToe
from repro.search.alphabeta import alphabeta
from repro.search.negamax import negamax
from repro.search.transposition import (
    Bound,
    TranspositionTable,
    TTEntry,
    alphabeta_tt,
    iterative_deepening,
)

from conftest import explicit_problem, random_problem


class TestTable:
    def test_probe_miss_then_hit(self):
        table = TranspositionTable()
        assert table.probe("pos") is None
        table.store("pos", TTEntry(5.0, 3, Bound.EXACT, 1))
        entry = table.probe("pos")
        assert entry is not None and entry.value == 5.0
        assert table.hits == 1 and table.misses == 1

    def test_deeper_entry_not_overwritten(self):
        table = TranspositionTable()
        table.store("pos", TTEntry(5.0, 4, Bound.EXACT, None))
        table.store("pos", TTEntry(9.0, 2, Bound.EXACT, None))
        assert table.probe("pos").value == 5.0

    def test_equal_depth_overwrites(self):
        table = TranspositionTable()
        table.store("pos", TTEntry(5.0, 2, Bound.UPPER, None))
        table.store("pos", TTEntry(9.0, 2, Bound.EXACT, None))
        assert table.probe("pos").value == 9.0

    def test_lru_eviction(self):
        table = TranspositionTable(capacity=2)
        table.store("a", TTEntry(1.0, 1, Bound.EXACT, None))
        table.store("b", TTEntry(2.0, 1, Bound.EXACT, None))
        table.probe("a")  # refresh a
        table.store("c", TTEntry(3.0, 1, Bound.EXACT, None))
        assert table.probe("b") is None  # b was least recently used
        assert table.probe("a") is not None
        assert table.evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(SearchError):
            TranspositionTable(capacity=0)

    def test_eviction_prefers_shallow_victim(self):
        """Regression: capacity eviction used to drop the LRU-oldest entry
        even when it held the deepest result, keeping a shallower one
        instead.  Depth-preferred replacement must sacrifice the shallow
        entry and keep the deep one."""
        table = TranspositionTable(capacity=2)
        table.store("deep", TTEntry(5.0, 5, Bound.EXACT, None))
        table.store("shallow", TTEntry(1.0, 1, Bound.EXACT, None))
        # "deep" is now LRU-oldest; a pure-LRU table would evict it here.
        table.store("new", TTEntry(0.0, 0, Bound.EXACT, None))
        assert table.probe("deep") is not None
        assert table.probe("shallow") is None
        assert table.evictions == 1

    def test_eviction_tie_falls_to_lru(self):
        table = TranspositionTable(capacity=2)
        table.store("a", TTEntry(1.0, 3, Bound.EXACT, None))
        table.store("b", TTEntry(2.0, 3, Bound.EXACT, None))
        table.store("c", TTEntry(3.0, 3, Bound.EXACT, None))
        assert table.probe("a") is None  # equal depths: oldest goes
        assert table.probe("b") is not None and table.probe("c") is not None

    def test_clear(self):
        table = TranspositionTable()
        table.store("a", TTEntry(1.0, 1, Bound.EXACT, None))
        table.clear()
        assert len(table) == 0


class TestAlphabetaTT:
    def test_exact_on_tictactoe(self):
        """Tic-tac-toe transposes heavily and always at equal ply, so the
        table-driven search must match plain alpha-beta exactly."""
        problem = SearchProblem(TicTacToe(), depth=6)
        plain = alphabeta(problem)
        tt = alphabeta_tt(problem, TranspositionTable())
        assert tt.value == plain.value

    def test_transpositions_cut_work_on_tictactoe(self):
        problem = SearchProblem(TicTacToe(), depth=7)
        plain = alphabeta(problem)
        table = TranspositionTable()
        tt = alphabeta_tt(problem, table)
        assert tt.value == plain.value
        assert tt.stats.nodes_generated < plain.stats.nodes_generated
        assert table.hits > 0

    def test_exact_on_random_trees(self, small_random_problems):
        for problem in small_random_problems:
            truth = negamax(problem).value
            assert alphabeta_tt(problem, TranspositionTable()).value == truth

    def test_exact_on_early_othello(self):
        problem = SearchProblem(Othello(), depth=4, sort_below_root=2)
        plain = alphabeta(problem)
        tt = alphabeta_tt(problem, TranspositionTable())
        assert tt.value == plain.value

    def test_warm_table_is_nearly_free(self):
        problem = SearchProblem(TicTacToe(), depth=6)
        table = TranspositionTable()
        alphabeta_tt(problem, table)
        warm = alphabeta_tt(problem, table)
        assert warm.stats.nodes_generated == 0  # root answered from the table

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            alphabeta_tt(explicit_problem([1, 2]), TranspositionTable(), alpha=1, beta=1)


class TestIterativeDeepening:
    def test_matches_direct_search(self):
        problem = random_problem(3, 5, seed=4)
        truth = negamax(problem).value
        assert iterative_deepening(problem).value == truth

    def test_depth_zero(self):
        game = RandomGameTree(3, 3, seed=0)
        problem = SearchProblem(game, depth=0)
        assert iterative_deepening(problem).value == game.evaluate(game.root())

    def test_hash_moves_help_on_ordered_game(self):
        """On a strongly ordered game, deepening with hash moves beats a
        cold full-depth search in total evaluations — the classic
        iterative-deepening paradox."""
        game = IncrementalGameTree(5, 6, seed=8, noise=0.6)
        problem = SearchProblem(game, depth=6)
        cold = alphabeta(problem)
        deepened = iterative_deepening(problem)
        assert deepened.value == cold.value
        assert deepened.stats.leaf_evals < cold.stats.leaf_evals * 1.5
