"""Soak battery: thousands of requests, then prove nothing leaked.

Two layers.  The bulk pass drives the scheduler alone with the fake
engine from the property battery — thousands of mixed-priority,
mixed-deadline requests against a tiny queue, checking the conservation
laws hold at volume (submitted == completed + shed, shed == rejected +
evicted) and that every future resolves.  The real-pool pass runs a
full service with worker processes and a deliberately small span ring,
then audits the process after shutdown: no surviving worker processes,
no new shared-memory segments, file descriptors back to baseline, and
the SpanRing's drop counter exactly accounting for the overflow.

Marked slow; deselect with ``-m "not slow"``.
"""

from __future__ import annotations

import asyncio
import gc
import multiprocessing
import os
import random
import time

import pytest

import test_serve_scheduler as sched_fakes
from repro.serve import (
    STATUS_OK,
    STATUS_SHED,
    SearchRequest,
    SearchService,
    ServeConfig,
)
from repro.serve.api import PRIORITIES
from repro.serve.scheduler import RequestScheduler

pytestmark = pytest.mark.slow

BULK_REQUESTS = 3000
SERVICE_REQUESTS = 300
SPAN_CAPACITY = 64


def test_bulk_conservation_under_pressure() -> None:
    """Thousands of requests against a tiny queue: the books balance."""
    rng = random.Random(2026)
    clock = sched_fakes.FakeClock()
    engine = sched_fakes.FakeEngine(clock)
    scheduler = RequestScheduler(
        engine, max_concurrency=4, queue_limit=8, clock=clock
    )

    async def scenario() -> list:
        futures = []
        for i in range(BULK_REQUESTS):
            request = SearchRequest(
                request_id=f"s{i:06d}",
                workload="fake",
                max_depth=rng.randint(1, 4),
                deadline_s=rng.choice((None, 0.5, 2.0, 5.0)),
                priority=rng.choice(PRIORITIES),
            )
            futures.append(scheduler.submit_nowait(request))
            if i % 7 == 0:
                await asyncio.sleep(0)  # interleave with the pump
        await scheduler.drain()
        return [await f for f in futures]

    replies = asyncio.run(scenario())

    assert len(replies) == BULK_REQUESTS
    assert len({r.request_id for r in replies}) == BULK_REQUESTS
    counters = scheduler.counters
    assert counters["submitted"] == BULK_REQUESTS
    assert counters["completed"] == sum(
        1 for r in replies if r.status == STATUS_OK
    )
    assert counters["shed"] == sum(1 for r in replies if r.status == STATUS_SHED)
    assert counters["completed"] + counters["shed"] == BULK_REQUESTS
    assert counters["shed"] == counters["rejected"] + counters["evicted"]
    assert counters["shed"] > 0, "a queue of 8 must shed at this volume"
    assert scheduler.conservation_problems() == []
    assert scheduler.in_flight == 0


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


def _shm_names() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set()


def _wait_for_no_children(timeout_s: float = 10.0) -> list:
    """Join pool workers; returns whatever is still alive after timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()
        if not children:
            return []
        time.sleep(0.05)
    return multiprocessing.active_children()


async def _service_pass(n_requests: int) -> SearchService:
    config = ServeConfig(
        n_workers=2,
        max_concurrency=4,
        queue_limit=6,
        tt_mode="shared",
        eval_cache_mode="shared",
        span_capacity=SPAN_CAPACITY,
    )
    rng = random.Random(11)
    service = await SearchService(config).start()
    try:
        names = sorted(service.catalog)
        requests = [
            SearchRequest(
                request_id=f"k{i:06d}",
                workload=names[i % len(names)],
                max_depth=2,
                priority=rng.choice(PRIORITIES),
            )
            for i in range(n_requests)
        ]
        replies = await asyncio.gather(*(service.handle(r) for r in requests))
        assert {r.status for r in replies} <= {STATUS_OK, STATUS_SHED}
        assert sum(1 for r in replies if r.status == STATUS_OK) > 0
    finally:
        await service.shutdown()
    return service


def test_service_soak_leaves_no_residue() -> None:
    """Real workers, shared tables, tight ring — clean process afterward.

    A throwaway warm-up pass runs first so one-time global machinery
    (the multiprocessing resource tracker and its pipe, import caches)
    exists before the baseline snapshot; the audited pass must then
    return the process to that baseline.
    """
    asyncio.run(_service_pass(4))  # warm-up: spawn tracker, prime imports
    assert _wait_for_no_children() == []
    gc.collect()

    fd_before = _fd_count()
    shm_before = _shm_names()

    service = asyncio.run(_service_pass(SERVICE_REQUESTS))

    # Worker processes are gone.
    leftover = _wait_for_no_children()
    assert leftover == [], f"leaked worker processes: {leftover}"

    # Shared-memory segments were unlinked.
    gc.collect()
    leaked_shm = _shm_names() - shm_before
    assert leaked_shm == set(), f"leaked shm segments: {leaked_shm}"

    # File descriptors returned to baseline (small slack for the
    # garbage collector's timing on freshly dropped sockets).
    gc.collect()
    fd_after = _fd_count()
    assert fd_after <= fd_before + 2, (
        f"fd leak: {fd_before} before, {fd_after} after"
    )

    # Scheduler books balance at volume on the real path too.
    assert service.scheduler is not None
    counters = service.scheduler.counters
    assert counters["submitted"] == SERVICE_REQUESTS
    assert counters["completed"] + counters["shed"] == SERVICE_REQUESTS
    assert counters["shed"] == counters["rejected"] + counters["evicted"]
    assert service.scheduler.conservation_problems() == []

    # The pool's final counters survived close() for post-mortems.
    assert service.final_counters.get("tasks_completed", 0) > 0

    # SpanRing drop accounting: lifetime total == capacity-bounded
    # retained spans + dropped, and the overflow is exactly accounted.
    ring = service.ring
    assert ring.recorded > SPAN_CAPACITY, "soak must overflow the ring"
    assert ring.dropped == ring.recorded - SPAN_CAPACITY
    snapshot = service.stats_snapshot()
    assert snapshot["spans_recorded"] == ring.recorded
    assert snapshot["spans_dropped"] == ring.dropped