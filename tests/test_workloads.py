"""Tests for the Table 3 workload suite."""

import pytest

from repro.errors import SearchError
from repro.workloads import FULL_SCALE_ENV, PROCESSOR_COUNTS, bench_scale, table3_suite


class TestTable3:
    def test_paper_scale_matches_table3(self):
        suite = table3_suite("paper")
        assert set(suite) == {"R1", "R2", "R3", "O1", "O2", "O3"}
        assert suite["R1"].search_depth == 10 and suite["R1"].serial_depth == 7
        assert suite["R2"].search_depth == 11 and suite["R2"].serial_depth == 7
        assert suite["R3"].search_depth == 7 and suite["R3"].serial_depth == 5
        for name in ("O1", "O2", "O3"):
            assert suite[name].search_depth == 7
            assert suite[name].serial_depth == 5
            assert suite[name].sort_below_root == 5

    def test_random_degrees(self):
        suite = table3_suite("paper")
        assert suite["R1"].make_game().degree == 4
        assert suite["R2"].make_game().degree == 4
        assert suite["R3"].make_game().degree == 8

    def test_reduced_scale_preserves_structure(self):
        paper = table3_suite("paper")
        reduced = table3_suite("reduced")
        for name in paper:
            assert paper[name].kind == reduced[name].kind
            assert reduced[name].search_depth <= paper[name].search_depth
            assert reduced[name].serial_depth < reduced[name].search_depth

    def test_problem_construction(self):
        problem = table3_suite("reduced")["R3"].problem()
        assert problem.depth == 5
        assert len(problem.game.children(problem.game.root())) == 8

    def test_specs_are_reusable(self):
        spec = table3_suite("reduced")["R1"]
        a, b = spec.problem(), spec.problem()
        pos = a.game.root()
        for _ in range(spec.search_depth):
            pos = a.game.children(pos)[0]
        assert a.game.evaluate(pos) == b.game.evaluate(pos)

    def test_unknown_scale_rejected(self):
        with pytest.raises(SearchError):
            table3_suite("huge")

    def test_processor_counts_cover_paper_sweep(self):
        assert PROCESSOR_COUNTS[0] == 1
        assert PROCESSOR_COUNTS[-1] == 16


class TestBenchScale:
    def test_default_reduced(self, monkeypatch):
        monkeypatch.delenv(FULL_SCALE_ENV, raising=False)
        assert bench_scale() == "reduced"

    def test_env_switches_to_paper(self, monkeypatch):
        monkeypatch.setenv(FULL_SCALE_ENV, "1")
        assert bench_scale() == "paper"
