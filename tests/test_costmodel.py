"""Unit tests for the shared cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costmodel import DEFAULT_COST_MODEL, FRICTIONLESS_COST_MODEL, CostModel


class TestValidation:
    def test_default_is_valid(self):
        assert DEFAULT_COST_MODEL.static_eval > 0

    @pytest.mark.parametrize(
        "field",
        ["expand_base", "expand_per_child", "static_eval", "heap_op", "combine_step", "bookkeeping"],
    )
    def test_negative_cost_rejected(self, field):
        with pytest.raises(ValueError):
            CostModel(**{field: -1.0})

    def test_zero_costs_allowed(self):
        model = CostModel(heap_op=0.0, combine_step=0.0, bookkeeping=0.0)
        assert model.heap_op == 0.0

    def test_frictionless_has_free_synchronization(self):
        assert FRICTIONLESS_COST_MODEL.heap_op == 0.0
        assert FRICTIONLESS_COST_MODEL.combine_step == 0.0
        assert FRICTIONLESS_COST_MODEL.bookkeeping == 0.0
        # But real work still costs.
        assert FRICTIONLESS_COST_MODEL.static_eval > 0


class TestArithmetic:
    def test_expansion_cost(self):
        model = CostModel(expand_base=2.0, expand_per_child=1.5)
        assert model.expansion(4) == 2.0 + 4 * 1.5

    def test_expansion_of_zero_children_is_base(self):
        assert DEFAULT_COST_MODEL.expansion(0) == DEFAULT_COST_MODEL.expand_base

    def test_ordering_cost_is_per_child_evaluation(self):
        model = CostModel(static_eval=10.0)
        assert model.ordering(7) == 70.0

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_scaled_multiplies_every_field(self, factor):
        scaled = DEFAULT_COST_MODEL.scaled(factor)
        assert scaled.static_eval == pytest.approx(DEFAULT_COST_MODEL.static_eval * factor)
        assert scaled.heap_op == pytest.approx(DEFAULT_COST_MODEL.heap_op * factor)
        assert scaled.expand_base == pytest.approx(DEFAULT_COST_MODEL.expand_base * factor)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.scaled(-0.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.static_eval = 5.0  # type: ignore[misc]
