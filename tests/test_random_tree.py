"""Unit tests for the synthetic tree generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GameError
from repro.games.base import SearchProblem
from repro.games.random_tree import (
    IncrementalGameTree,
    RandomGameTree,
    SyntheticOrderedTree,
    TreePosition,
)
from repro.search.alphabeta import alphabeta
from repro.search.minimal_tree import minimal_leaf_count_formula
from repro.search.negamax import negamax


class TestRandomGameTree:
    def test_shape(self):
        tree = RandomGameTree(3, 2, seed=0)
        root = tree.root()
        kids = tree.children(root)
        assert len(kids) == 3
        grand = tree.children(kids[0])
        assert len(grand) == 3
        assert tree.children(grand[0]) == ()

    def test_leaf_count(self):
        assert RandomGameTree(4, 5).leaf_count() == 4**5

    def test_determinism_across_instances(self):
        a, b = RandomGameTree(3, 4, seed=7), RandomGameTree(3, 4, seed=7)
        leaf = a.children(a.children(a.root())[1])[2]
        # descend to an actual leaf
        pos = a.root()
        for _ in range(4):
            pos = a.children(pos)[1]
        assert a.evaluate(pos) == b.evaluate(pos)

    def test_seed_changes_values(self):
        a, b = RandomGameTree(2, 3, seed=1), RandomGameTree(2, 3, seed=2)
        pos = TreePosition((0, 1, 0))
        assert a.evaluate(pos) != b.evaluate(pos)

    @given(st.integers(1, 6), st.integers(0, 4), st.integers(0, 50))
    def test_leaf_values_in_range(self, degree, height, seed):
        tree = RandomGameTree(degree, height, seed=seed, value_range=100)
        pos = tree.root()
        for _ in range(height):
            pos = tree.children(pos)[0]
        assert -100 <= tree.evaluate(pos) <= 100

    @pytest.mark.parametrize(
        "kwargs", [dict(degree=0, height=2), dict(degree=2, height=-1), dict(degree=2, height=2, value_range=0)]
    )
    def test_validation(self, kwargs):
        with pytest.raises(GameError):
            RandomGameTree(**kwargs)


class TestIncrementalGameTree:
    def test_interior_static_correlates_with_negamax(self):
        """With zero noise, static ordering should often match true order."""
        tree = IncrementalGameTree(3, 4, seed=3, noise=0.0)
        problem = SearchProblem(tree, depth=4)
        root_kids = tree.children(tree.root())
        static_order = sorted(range(3), key=lambda i: tree.evaluate(root_kids[i]))

        def true_value(pos, remaining):
            kids = tree.children(pos) if remaining else ()
            if not kids:
                return tree.evaluate(pos)
            return max(-true_value(k, remaining - 1) for k in kids)

        true_order = sorted(range(3), key=lambda i: true_value(root_kids[i], 3))
        # The statically best child should be among the top two truly best.
        assert static_order[0] in true_order[:2]

    def test_ordering_quality_improves_alphabeta(self):
        """Sorted search on a strongly ordered tree prunes more."""
        tree = IncrementalGameTree(4, 6, seed=5, noise=0.1)
        unsorted = alphabeta(SearchProblem(tree, depth=6))
        sorted_ = alphabeta(SearchProblem(tree, depth=6, sort_below_root=6))
        assert sorted_.value == unsorted.value
        assert sorted_.stats.leaf_evals < unsorted.stats.leaf_evals

    def test_validation(self):
        with pytest.raises(GameError):
            IncrementalGameTree(2, 3, noise=-0.1)


class TestSyntheticOrderedTree:
    @given(st.integers(2, 4), st.integers(1, 5), st.integers(0, 20))
    def test_negamax_equals_assigned_root_value(self, degree, height, seed):
        tree = SyntheticOrderedTree(degree, height, seed=seed)
        problem = SearchProblem(tree, depth=height)
        assert negamax(problem).value == float(tree.root_value)

    @given(st.integers(2, 4), st.integers(1, 4), st.integers(0, 10))
    def test_random_placement_still_exact(self, degree, height, seed):
        tree = SyntheticOrderedTree(degree, height, seed=seed, best_child="random")
        problem = SearchProblem(tree, depth=height)
        assert negamax(problem).value == float(tree.root_value)

    def test_best_first_gives_minimal_tree(self):
        """On a perfectly ordered tree alpha-beta visits exactly the
        Knuth-Moore minimal tree (Section 2.2)."""
        for degree, height in ((2, 6), (3, 5), (4, 6), (5, 4)):
            tree = SyntheticOrderedTree(degree, height, seed=1)
            result = alphabeta(SearchProblem(tree, depth=height))
            assert result.stats.leaf_evals == minimal_leaf_count_formula(degree, height)

    def test_worst_first_visits_everything(self):
        tree = SyntheticOrderedTree(3, 4, seed=2, best_child="last")
        result = alphabeta(SearchProblem(tree, depth=4))
        best = alphabeta(SearchProblem(SyntheticOrderedTree(3, 4, seed=2), depth=4))
        assert result.stats.leaf_evals > best.stats.leaf_evals

    def test_invalid_placement(self):
        with pytest.raises(GameError):
            SyntheticOrderedTree(2, 2, best_child="middle")

    def test_assigned_value_consistency(self):
        """Every node's assigned value equals the negmax of its subtree."""
        tree = SyntheticOrderedTree(3, 3, seed=4)

        def nm(path):
            kids = tree.children(TreePosition(path))
            if not kids:
                return tree.evaluate(TreePosition(path))
            return max(-nm(k.path) for k in kids)

        for path in [(), (0,), (1,), (2, 0), (1, 2)]:
            assert nm(path) == tree.assigned_value(path)
