"""Critical-path extraction, what-if profiling, and the explain surfaces.

The central claim under test is *exactness*: the extracted path's busy
credits telescope to the makespan, so ``CriticalPath.length`` equals the
run's simulated makespan with ``==``, not ``approx`` (the cost model's
values are dyadic, so every simulated timestamp is exact in binary
floating point).  Everything downstream — attribution tables, blame
reports, the Chrome-trace overlay, ledger composition records — is a
pure function of the recorded schedule, so fixed seeds give fixed bytes
(golden-tested).

Regenerate goldens after an intentional change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_critpath.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.experiments import er_config_for
from repro.analysis.gantt import render_gantt
from repro.cli import main
from repro.core.er_parallel import ERConfig, parallel_er
from repro.costmodel import DEFAULT_COST_MODEL
from repro.errors import SimulationError
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree
from repro.obs import critpath, ledger, observing, whatif
from repro.obs.critpath import (
    BUSY,
    LOCK_WAIT,
    OP_ATTRIBUTION,
    CriticalPath,
    ScheduleRecorder,
    bus_events,
    extract,
    render_report,
)
from repro.obs.events import EV_CRIT_SEGMENT
from repro.obs.export import render_chrome_trace
from repro.obs.snapshot import snapshot_from_sim
from repro.workloads.suite import table3_suite

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_REPORT = GOLDEN_DIR / "explain_report.txt"
GOLDEN_OVERLAY = GOLDEN_DIR / "critpath_overlay.json"

_SEED = 7


def _problem() -> SearchProblem:
    return SearchProblem(RandomGameTree(3, 5, seed=_SEED), depth=5)


def _record_run():
    """One small fixed-seed run under bus + schedule recorder."""
    with observing() as bus, critpath.recording() as rec:
        result = parallel_er(
            _problem(), 2, config=ERConfig(serial_depth=2), record_timeline=True
        )
    return bus, rec, result


@pytest.fixture(scope="module")
def recorded():
    bus, rec, result = _record_run()
    return bus, rec, result, extract(rec, result.sim_time)


def _check_golden(path: Path, text: str) -> None:
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    assert path.exists(), f"{path.name} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    assert text == path.read_text(encoding="utf-8"), (
        f"fixed-seed {path.name} changed; if intentional, regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )


# ---------------------------------------------------------------------------
# Exactness: path length == makespan, by construction.
# ---------------------------------------------------------------------------


class TestExactness:
    def test_path_length_equals_makespan_exactly(self, recorded):
        _, _, result, path = recorded
        assert path.length == result.sim_time
        assert path.makespan == result.sim_time

    def test_r3_p4_acceptance(self):
        """The PR's acceptance run: R3 reduced on 4 processors, exact."""
        spec = table3_suite("reduced")["R3"]
        with critpath.recording() as rec:
            result = parallel_er(
                spec.problem(), 4, config=er_config_for(spec), record_timeline=True
            )
        path = extract(rec, result.sim_time)
        assert path.length == result.sim_time

    def test_busy_credits_cover_each_wallclock_instant_once(self, recorded):
        _, _, _, path = recorded
        # Busy credit windows [end - credit, end] abut in forward order.
        t = 0.0
        for step in path.busy_steps:
            start = step.interval.end - step.credit
            assert start == pytest.approx(t, abs=1e-9)
            t = step.interval.end
        assert t == path.makespan

    def test_attributions_partition_the_length(self, recorded):
        _, _, _, path = recorded
        assert sum(path.by_primitive().values()) == pytest.approx(path.length)
        assert sum(path.by_node().values()) == pytest.approx(path.length)
        assert sum(path.by_class().values()) == pytest.approx(path.length)

    def test_handoffs_are_zero_credit(self, recorded):
        _, _, _, path = recorded
        assert all(s.credit == 0.0 for s in path.handoffs)
        counts = path.handoff_counts()
        assert counts["lock"] + counts["starve"] == len(path.handoffs)

    def test_composition_is_flat_and_consistent(self, recorded):
        _, _, _, path = recorded
        comp = path.composition()
        assert comp["length"] == comp["makespan"] == path.makespan
        prim_total = sum(v for k, v in comp.items() if k.startswith("primitive."))
        assert prim_total == pytest.approx(path.length)

    def test_every_processor_wid_is_valid(self, recorded):
        _, _, result, path = recorded
        wids = {s.interval.wid for s in path.steps}
        assert wids <= set(range(result.n_processors))


# ---------------------------------------------------------------------------
# Recorder contents and hand-off provenance.
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_node_queue_provenance_recorded(self, recorded):
        _, rec, _, path = recorded
        assert rec.node_queue, "no heap pops recorded"
        assert all(q.startswith("heap.") for q in rec.node_queue.values())
        assert path.node_queue == rec.node_queue

    def test_wait_intervals_name_their_waker(self, recorded):
        _, rec, _, _ = recorded
        waits = [iv for iv in rec.intervals if iv.kind != BUSY]
        assert waits, "no waits recorded on a contended run"
        assert all(iv.src >= 0 for iv in waits)
        assert all(iv.tag for iv in waits)

    def test_intervals_tile_each_processor(self, recorded):
        _, rec, result, _ = recorded
        by_wid: dict[int, list] = {}
        for iv in rec.intervals:
            by_wid.setdefault(iv.wid, []).append(iv)
        for wid, metrics in enumerate(result.report.processors):
            ivs = sorted(by_wid.get(wid, []), key=lambda iv: iv.start)
            assert ivs and ivs[0].start == 0.0
            for prev, nxt in zip(ivs, ivs[1:]):
                assert nxt.start == pytest.approx(prev.end, abs=1e-9)
            assert ivs[-1].end == pytest.approx(metrics.finish_time, abs=1e-9)

    def test_no_recorder_no_overhead_state(self):
        result = parallel_er(_problem(), 2, config=ERConfig(serial_depth=2))
        assert critpath.CURRENT is None
        assert result.value is not None

    def test_double_install_rejected(self):
        rec = ScheduleRecorder()
        critpath.install(rec)
        try:
            with pytest.raises(SimulationError):
                critpath.install(ScheduleRecorder())
        finally:
            critpath.uninstall()

    def test_extract_flags_untiled_schedule(self):
        rec = ScheduleRecorder()
        rec.on_busy(0, 5.0, 10.0)  # gap before t=5 on the only processor
        with pytest.raises(SimulationError, match="tile"):
            extract(rec, 10.0)

    def test_extract_flags_missing_finisher(self):
        rec = ScheduleRecorder()
        rec.on_busy(0, 0.0, 4.0)
        with pytest.raises(SimulationError, match="makespan"):
            extract(rec, 10.0)

    def test_extract_flags_wait_without_src(self):
        rec = ScheduleRecorder()
        rec.on_busy(0, 0.0, 4.0)
        rec.on_wait(0, LOCK_WAIT, 4.0, 10.0, via="heap", src=-1)
        with pytest.raises(SimulationError, match="waker"):
            extract(rec, 10.0)

    def test_empty_run_empty_path(self):
        path = extract(ScheduleRecorder(), 0.0)
        assert path.steps == ()
        assert path.length == 0.0


# ---------------------------------------------------------------------------
# Determinism: same seed, same bytes.
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_report_bytes_identical_across_runs(self):
        texts = []
        for _ in range(2):
            _, rec, result = _record_run()
            path = extract(rec, result.sim_time)
            texts.append(render_report(path, title="G1 sim P=2"))
        assert texts[0] == texts[1]

    def test_report_matches_golden(self, recorded):
        _, _, _, path = recorded
        _check_golden(GOLDEN_REPORT, render_report(path, title="G1 sim P=2"))

    def test_overlay_trace_matches_golden(self, recorded):
        bus, _, result, path = recorded
        text = render_chrome_trace(
            bus.events,
            report=result.report,
            metadata={"workload": "G1", "seed": _SEED, "n_processors": 2},
            critpath=path,
        )
        _check_golden(GOLDEN_OVERLAY, text)

    def test_overlay_rows_live_in_their_own_process_group(self, recorded):
        bus, _, result, path = recorded
        payload = json.loads(
            render_chrome_trace(bus.events, report=result.report, critpath=path)
        )
        overlay = [e for e in payload["traceEvents"] if e.get("cat") == "critpath"]
        assert overlay, "no overlay rows emitted"
        assert all(e["pid"] == 1 for e in overlay)
        x_rows = [e for e in overlay if e["ph"] == "X"]
        assert sum(e["dur"] for e in x_rows) == pytest.approx(path.length)
        assert any(e["ph"] == "i" for e in overlay) == bool(path.handoffs)

    def test_overlay_absent_without_critpath(self, recorded):
        bus, _, result, _ = recorded
        payload = json.loads(render_chrome_trace(bus.events, report=result.report))
        assert not any(e.get("cat") == "critpath" for e in payload["traceEvents"])

    def test_bus_events_mirror_the_path(self, recorded):
        _, _, _, path = recorded
        events = bus_events(path)
        assert len(events) == len(path.steps)
        assert all(e.etype == EV_CRIT_SEGMENT for e in events)
        assert sum(float(e.data["credit"]) for e in events) == pytest.approx(  # type: ignore[arg-type]
            path.length
        )


# ---------------------------------------------------------------------------
# What-if: Coz-style virtual speedups vs genuine perturbed re-runs.
# ---------------------------------------------------------------------------


class TestWhatIf:
    def test_perturbed_scales_only_named_fields(self):
        cm = whatif.perturbed(DEFAULT_COST_MODEL, "static_eval", 0.5)
        assert cm.static_eval == DEFAULT_COST_MODEL.static_eval * 0.5
        assert cm.heap_op == DEFAULT_COST_MODEL.heap_op
        cm = whatif.perturbed(DEFAULT_COST_MODEL, "expansion", 0.0)
        assert cm.expand_base == 0.0 and cm.expand_per_child == 0.0

    def test_perturbed_rejects_unknown_primitive(self):
        with pytest.raises(SimulationError, match="unknown cost primitive"):
            whatif.perturbed(DEFAULT_COST_MODEL, "telepathy", 0.5)

    def test_perturbed_rejects_negative_factor(self):
        with pytest.raises(SimulationError, match="non-negative"):
            whatif.perturbed(DEFAULT_COST_MODEL, "static_eval", -0.1)

    def test_factor_one_skips_the_rerun(self):
        calls = []

        def runner(cm):
            calls.append(cm)
            return 123.0

        points = whatif.sweep(
            runner,
            {"static_eval": 40.0},
            100.0,
            primitives=["static_eval"],
            factors=[1.0],
            cost_model=DEFAULT_COST_MODEL,
        )
        assert calls == []
        assert points[0].actual_makespan == 100.0
        assert points[0].predicted_makespan == 100.0

    def test_prediction_formula(self):
        points = whatif.sweep(
            lambda cm: 70.0,
            {"static_eval": 40.0},
            100.0,
            primitives=["static_eval"],
            factors=[0.0, 0.5],
            cost_model=DEFAULT_COST_MODEL,
        )
        assert points[0].predicted_makespan == 60.0  # 100 - 1.0 * 40
        assert points[1].predicted_makespan == 80.0  # 100 - 0.5 * 40
        assert points[0].actual_makespan == 70.0
        assert points[0].prediction_error == -10.0

    def test_sweep_on_a_real_run_zeroed_primitive_speeds_up(self, recorded):
        _, _, result, path = recorded

        def rerun(cm):
            return parallel_er(
                _problem(), 2, config=ERConfig(serial_depth=2), cost_model=cm
            ).sim_time

        points = whatif.sweep(
            rerun,
            path.by_primitive(),
            result.sim_time,
            primitives=["static_eval"],
            factors=[0.0],
            cost_model=DEFAULT_COST_MODEL,
        )
        (point,) = points
        assert point.attributed > 0.0
        assert point.actual_makespan < point.base_makespan
        assert point.actual_speedup > 1.0

    def test_records_are_flat_and_complete(self):
        points = whatif.sweep(
            lambda cm: 70.0,
            {"heap_op": 5.0},
            100.0,
            primitives=["heap_op"],
            factors=[0.0],
            cost_model=DEFAULT_COST_MODEL,
        )
        (record,) = whatif.to_records(points)
        assert set(record) == {
            "primitive",
            "factor",
            "base_makespan",
            "attributed",
            "predicted_makespan",
            "actual_makespan",
            "predicted_speedup",
            "actual_speedup",
        }

    def test_render_table_is_deterministic(self):
        points = whatif.sweep(
            lambda cm: 70.0,
            {"heap_op": 5.0},
            100.0,
            primitives=["heap_op"],
            factors=[0.0, 0.5],
            cost_model=DEFAULT_COST_MODEL,
        )
        assert whatif.render_table(points) == whatif.render_table(points)
        assert "predicted" in whatif.render_table(points).splitlines()[1]

    def test_attribution_map_names_real_loss_classes(self):
        assert set(OP_ATTRIBUTION.values()) <= {"busy", "interference", "starvation"}


# ---------------------------------------------------------------------------
# Ledger integration: critpath composition + whatif points round-trip.
# ---------------------------------------------------------------------------


class TestLedgerIntegration:
    def _record(self, recorded, whatif_points=None):
        bus, _, result, path = recorded
        snap = snapshot_from_sim(
            result, workload="G1", bus=bus, critpath=path.composition()
        )
        return ledger.make_record(
            snap, workload="G1", seed=_SEED, git_sha="deadbeef", whatif=whatif_points
        )

    def test_record_with_critpath_and_whatif_validates(self, recorded):
        points = [
            {
                "primitive": "static_eval",
                "factor": 0.0,
                "predicted_makespan": 10.0,
                "actual_makespan": 11.0,
            }
        ]
        record = self._record(recorded, whatif_points=points)
        assert ledger.validate_record(record) == []
        assert record["whatif"] == points
        assert "critpath" in record["snapshot"]  # type: ignore[operator]

    def test_whatif_omitted_when_not_given(self, recorded):
        record = self._record(recorded)
        assert "whatif" not in record
        assert ledger.validate_record(record) == []

    def test_malformed_whatif_flagged(self, recorded):
        record = self._record(recorded, whatif_points=[{"primitive": "x"}])
        problems = ledger.validate_record(record)
        assert any("whatif[0] missing field" in p for p in problems)

    def test_compare_flags_composition_shift(self, recorded):
        base = self._record(recorded)
        cand = json.loads(json.dumps(base))
        comp = cand["snapshot"]["critpath"]
        makespan = comp["makespan"]
        # Move 20% of the makespan onto heap_op, away from static_eval.
        comp["primitive.heap_op"] = comp.get("primitive.heap_op", 0.0) + 0.2 * makespan
        comp["primitive.static_eval"] -= 0.2 * makespan
        report = ledger.compare_records(base, cand, tolerance=0.10)
        assert any("critpath share heap_op" in r for r in report.regressions)
        assert any("critpath share static_eval" in i for i in report.improvements)

    def test_compare_notes_missing_baseline_critpath(self, recorded):
        cand = self._record(recorded)
        base = json.loads(json.dumps(cand))
        del base["snapshot"]["critpath"]
        report = ledger.compare_records(base, cand)
        assert report.ok
        assert any("no critical-path data" in n for n in report.notes)

    def test_aggregate_series_per_configuration(self, recorded, tmp_path):
        record = self._record(recorded)
        ledger.write_record(record, tmp_path, name="a")
        newer = json.loads(json.dumps(record))
        newer["created_at"] = float(record["created_at"]) + 60.0  # type: ignore[arg-type]
        newer["git_sha"] = "cafebabe"
        ledger.write_record(newer, tmp_path, name="b")
        payload = ledger.aggregate(tmp_path)
        series = payload["series"]
        (key,) = series.keys()  # type: ignore[union-attr]
        assert key == "sim/G1/reduced/P2"
        points = series[key]  # type: ignore[index]
        assert [p["git_sha"] for p in points] == ["deadbeef", "cafebabe"]
        for point in points:
            assert point["makespan"] > 0
            assert point["nodes"] > 0
            assert 0.0 < point["efficiency"] <= 1.0
        summaries = payload["records"]
        assert all("critpath" in s for s in summaries)  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# Surfaces: gantt overlay and the explain CLI.
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_gantt_overlay_marks_the_path(self, recorded):
        _, _, result, path = recorded
        plain = render_gantt(result.report, width=48)
        overlaid = render_gantt(result.report, width=48, critpath=path)
        assert "^" not in plain
        assert "^" in overlaid
        assert "^ critical path" in overlaid
        # One marker row under each processor row.
        assert len(overlaid.splitlines()) == len(plain.splitlines()) + len(
            result.report.processors
        )

    def test_cli_explain_acceptance(self, capsys):
        assert main(["explain", "--workload", "R3", "--P", "4", "--skip-whatif"]) == 0
        out = capsys.readouterr().out
        assert "critical path: R3 sim P=4" in out
        assert "== makespan (exact)" in out
        assert "attribution by primitive" in out
        assert "blame by node" in out

    def test_cli_explain_output_is_deterministic(self, capsys):
        assert main(["explain", "--workload", "R3", "-P", "2", "--skip-whatif"]) == 0
        first = capsys.readouterr().out
        assert main(["explain", "--workload", "R3", "-P", "2", "--skip-whatif"]) == 0
        assert capsys.readouterr().out == first

    def test_cli_explain_whatif_writes_ledger_and_trace(self, capsys, tmp_path):
        trace_out = tmp_path / "explain.trace.json"
        assert (
            main(
                [
                    "explain",
                    "--workload",
                    "R3",
                    "--P",
                    "2",
                    "--factors",
                    "0.0",
                    "--trace-out",
                    str(trace_out),
                    "--ledger-dir",
                    str(tmp_path / "ledger"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "what-if causal profile" in out
        (record_path,) = (tmp_path / "ledger").glob("*.json")
        record = json.loads(record_path.read_text())
        primitives = {p["primitive"] for p in record["whatif"]}
        assert primitives == {"static_eval", "heap_op", "expansion"}
        assert "critpath" in record["snapshot"]
        payload = json.loads(trace_out.read_text())
        assert any(e.get("cat") == "critpath" for e in payload["traceEvents"])

    def test_cli_gantt_critpath_flag(self, capsys):
        assert main(["gantt", "--tree", "R3", "-P", "2", "--critpath"]) == 0
        out = capsys.readouterr().out
        assert "^" in out and "critical path" in out
