"""Telemetry layer: event bus, registry, snapshots, exporters, ledger.

The simulated backend anchors most assertions because it is
deterministic: the same seed produces the same event stream, the same
snapshot, and — via the golden file under ``tests/golden/`` — the same
Chrome trace bytes.  The wall-clock backends are checked for structure
(schema-valid ledger records, non-negative accounting) rather than
values.

Regenerate the golden trace after an intentional engine change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.er_parallel import ERConfig, parallel_er
from repro.games.base import SearchProblem
from repro.games.random_tree import RandomGameTree
from repro.obs import EVENT_METRICS, OP_METRICS, aggregate, observing, self_check
from repro.obs import events as obs_events
from repro.obs import ledger
from repro.obs.export import render_chrome_trace, render_jsonl
from repro.obs.snapshot import (
    SIM_UNITS,
    Snapshot,
    snapshot_from_multiproc,
    snapshot_from_sim,
    snapshot_from_threaded,
)
from repro.parallel.multiproc import multiproc_er
from repro.parallel.threaded import threaded_er_observed

GOLDEN_TRACE = Path(__file__).parent / "golden" / "sim_trace.json"

#: Small fixed-seed problem; every sim-backed test shares one run.
_SEED = 7


def _problem() -> SearchProblem:
    return SearchProblem(RandomGameTree(3, 5, seed=_SEED), depth=5)


@pytest.fixture(scope="module")
def sim_run():
    with observing() as bus:
        result = parallel_er(_problem(), 2, config=ERConfig(serial_depth=2))
    return bus, result


@pytest.fixture(scope="module")
def sim_snapshot(sim_run) -> Snapshot:
    bus, result = sim_run
    return snapshot_from_sim(result, workload="G1", bus=bus)


# ---------------------------------------------------------------------------
# Accounting: the paper's Section 3.1 decomposition is exact in simulation.
# ---------------------------------------------------------------------------


class TestAccounting:
    def test_tail_idle_closes_the_timeline(self, sim_run):
        _, result = sim_run
        report = result.report
        for metrics in report.processors:
            assert metrics.tail_idle >= 0.0
            assert metrics.accounted == pytest.approx(metrics.finish_time, abs=1e-9)
            assert metrics.accounted + metrics.tail_idle == pytest.approx(
                report.makespan, abs=1e-9
            )

    def test_snapshot_accounting_clean(self, sim_snapshot):
        assert sim_snapshot.check_accounting() == []

    def test_snapshot_flags_a_gap(self, sim_snapshot):
        broken = sim_snapshot.to_dict()
        broken["processors"][0]["busy"] += 1.0
        violations = Snapshot.from_dict(broken).check_accounting()
        assert any("finish_time" in v for v in violations)

    def test_fractions_partition_processor_time(self, sim_snapshot):
        snap = sim_snapshot
        total = (
            snap.busy_fraction
            + snap.starvation_fraction
            + snap.interference_fraction
            + snap.speculative_fraction
        )
        assert total == pytest.approx(1.0, abs=1e-9)


# ---------------------------------------------------------------------------
# Event bus and metrics registry.
# ---------------------------------------------------------------------------


class TestBusAndRegistry:
    def test_sim_emits_known_event_types_only(self, sim_run):
        bus, _ = sim_run
        assert bus.events, "sim run emitted no telemetry"
        assert {e.etype for e in bus.events} <= set(obs_events.ALL_EVENT_TYPES)

    def test_sim_event_timestamps_are_simulated(self, sim_run):
        bus, result = sim_run
        assert all(0.0 <= e.ts <= result.report.makespan for e in bus.events)

    def test_registry_covers_ops_and_events(self, sim_run):
        bus, _ = sim_run
        metrics = aggregate(bus).collect()
        assert metrics["sim.ops.compute"] > 0
        assert metrics["nodes.created"] > 0
        assert metrics["nodes.done"] > 0
        assert any(name.startswith("queue.depth") for name in metrics)

    def test_op_and_event_mappings_are_total(self, sim_run):
        bus, _ = sim_run
        assert set(bus.op_counts) <= set(OP_METRICS)
        assert {e.etype for e in bus.events} <= set(EVENT_METRICS)

    def test_no_bus_no_events(self):
        result = parallel_er(_problem(), 2, config=ERConfig(serial_depth=2))
        assert obs_events.CURRENT is None
        assert result.value is not None

    def test_self_check_is_clean(self):
        assert self_check() == []


# ---------------------------------------------------------------------------
# Exporters: golden Chrome trace and JSONL.
# ---------------------------------------------------------------------------


def _render_golden(bus, result) -> str:
    return render_chrome_trace(
        bus.events,
        report=result.report,
        time_unit=SIM_UNITS,
        metadata={"workload": "G1", "seed": _SEED, "n_processors": 2},
    )


class TestExport:
    def test_chrome_trace_matches_golden_bytes(self, sim_run):
        bus, result = sim_run
        text = _render_golden(bus, result)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_TRACE.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_TRACE.write_text(text, encoding="utf-8")
        assert GOLDEN_TRACE.exists(), (
            "golden trace missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert text == GOLDEN_TRACE.read_text(encoding="utf-8"), (
            "fixed-seed Chrome trace changed; if intentional, regenerate "
            "with REPRO_REGEN_GOLDEN=1"
        )

    def test_chrome_trace_is_perfetto_shaped(self, sim_run):
        bus, result = sim_run
        payload = json.loads(_render_golden(bus, result))
        assert set(payload) == {"displayTimeUnit", "metadata", "traceEvents"}
        events = payload["traceEvents"]
        assert events[0]["name"] == "process_name"
        phases = {e["ph"] for e in events}
        assert {"M", "X", "C", "i"} <= phases
        for event in events:
            assert "pid" in event and "tid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] != "M":
                assert event["ts"] >= 0.0

    def test_timeline_tracks_named_per_processor(self, sim_run):
        bus, result = sim_run
        payload = json.loads(_render_golden(bus, result))
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"P0", "P1"}

    def test_jsonl_round_trips_every_event(self, sim_run):
        bus, _ = sim_run
        lines = render_jsonl(bus.events).splitlines()
        assert len(lines) == len(bus.events)
        first = json.loads(lines[0])
        assert set(first) == {"etype", "ts", "task", "data"}


# ---------------------------------------------------------------------------
# Ledger: records validate on every backend; compare flags regressions.
# ---------------------------------------------------------------------------


class TestLedger:
    def _record(self, snap: Snapshot) -> ledger.Record:
        return ledger.make_record(
            snap, workload=snap.workload, scale="reduced", seed=_SEED
        )

    def test_sim_record_validates(self, sim_snapshot):
        assert ledger.validate_record(self._record(sim_snapshot)) == []

    def test_threaded_record_validates(self):
        with observing() as bus:
            run = threaded_er_observed(_problem(), 2, config=ERConfig(serial_depth=2))
        snap = snapshot_from_threaded(run, workload="G1", bus=bus)
        assert snap.check_accounting() == []
        assert ledger.validate_record(self._record(snap)) == []

    def test_multiproc_record_validates(self):
        with observing() as bus:
            result = multiproc_er(_problem(), 2, config=ERConfig(serial_depth=2))
        snap = snapshot_from_multiproc(result, workload="G1", bus=bus)
        assert snap.check_accounting() == []
        assert ledger.validate_record(self._record(snap)) == []

    def test_schema_agrees_with_jsonschema(self, sim_snapshot):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(self._record(sim_snapshot), ledger.LEDGER_SCHEMA)

    def test_validation_catches_structural_damage(self, sim_snapshot):
        missing = self._record(sim_snapshot)
        del missing["git_sha"]
        assert any("git_sha" in p for p in ledger.validate_record(missing))
        bad_backend = self._record(sim_snapshot)
        bad_backend["backend"] = "quantum"
        assert any("backend" in p for p in ledger.validate_record(bad_backend))

    def test_write_load_resolve_by_sha(self, sim_snapshot, tmp_path):
        record = self._record(sim_snapshot)
        record["git_sha"] = "abcdef0123456789"
        path = ledger.write_record(record, tmp_path)
        assert ledger.load_record(path) == record
        assert ledger.resolve("abcdef01", tmp_path) == record
        assert ledger.resolve(str(path), tmp_path) == record
        with pytest.raises(FileNotFoundError):
            ledger.resolve("feedface", tmp_path)

    def test_identical_records_have_no_regressions(self, sim_snapshot):
        record = self._record(sim_snapshot)
        report = ledger.compare_records(record, record)
        assert report.ok and report.regressions == []

    def test_compare_flags_work_and_loss_regressions(self, sim_snapshot):
        baseline = self._record(sim_snapshot)
        candidate = json.loads(json.dumps(baseline))
        candidate["snapshot"]["work"]["nodes_examined"] *= 1.5
        # Fractions derive from the processor rows, so regress one row.
        candidate["snapshot"]["processors"][0]["starvation"] += candidate["snapshot"][
            "makespan"
        ]
        report = ledger.compare_records(baseline, candidate)
        assert not report.ok
        assert any("nodes_examined" in r for r in report.regressions)
        assert any("starvation" in r for r in report.regressions)

    def test_compare_flags_value_mismatch(self, sim_snapshot):
        baseline = self._record(sim_snapshot)
        candidate = json.loads(json.dumps(baseline))
        candidate["snapshot"]["value"] += 1.0
        report = ledger.compare_records(baseline, candidate)
        assert any("value" in r for r in report.regressions)

    def test_aggregate_summarizes_directory(self, sim_snapshot, tmp_path):
        ledger.write_record(self._record(sim_snapshot), tmp_path)
        out = tmp_path / "BENCH_obs.json"
        payload = ledger.aggregate(tmp_path, out_path=out)
        assert payload["n_records"] == 1
        assert json.loads(out.read_text())["records"][0]["workload"] == "G1"


# ---------------------------------------------------------------------------
# Threaded decompositions close exactly, mirroring the sim-side invariant:
# busy is defined as the residual of each thread's lifetime, so
# accounted == finish_time and accounted + tail_idle == makespan hold to
# float round-off even though every quantity is wall-clock-measured.
# ---------------------------------------------------------------------------


class TestThreadedAccounting:
    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_accounted_plus_tail_idle_is_makespan(self, seed):
        problem = SearchProblem(RandomGameTree(3, 4, seed=seed), depth=4)
        run = threaded_er_observed(problem, 2, config=ERConfig(serial_depth=2))
        snap = snapshot_from_threaded(run, workload=f"G{seed}")
        assert snap.check_accounting() == []
        for proc in snap.processors:
            assert proc.accounted == pytest.approx(proc.finish_time, abs=1e-9)
            assert proc.accounted + proc.tail_idle == pytest.approx(
                snap.makespan, abs=1e-9
            )

    @pytest.mark.parametrize("seed", [3, 7])
    def test_thread_timings_partition_each_lifetime(self, seed):
        problem = SearchProblem(RandomGameTree(3, 4, seed=seed), depth=4)
        run = threaded_er_observed(problem, 3, config=ERConfig(serial_depth=2))
        assert len(run.timings) == 3
        for t in run.timings:
            assert t.busy >= 0 and t.lock_wait >= 0 and t.starve_wait >= 0
            assert t.busy + t.lock_wait + t.starve_wait == pytest.approx(
                t.wall, abs=1e-9
            )
            assert t.wall <= run.wall_time + 1e-9


# ---------------------------------------------------------------------------
# Snapshot serialization.
# ---------------------------------------------------------------------------


class TestSnapshotRoundTrip:
    def test_to_from_dict_identity(self, sim_snapshot):
        clone = Snapshot.from_dict(sim_snapshot.to_dict())
        assert clone == sim_snapshot

    def test_dict_is_json_safe(self, sim_snapshot):
        json.dumps(sim_snapshot.to_dict())


# ---------------------------------------------------------------------------
# Degenerate micro-runs: wall_time == 0 must not leak negatives or NaNs.
# ---------------------------------------------------------------------------


class TestZeroWallSnapshots:
    """Timer-quantized micro-runs hand the builders wall_time == 0.

    Per-thread walls can then exceed the run wall (so naive tail_idle
    goes negative) and every fraction divides by zero.  The builders
    clamp measured categories; these are the regression tests.
    """

    def test_threaded_zero_wall_run(self):
        from repro.parallel.threaded import ThreadedRun, ThreadTiming
        from repro.search.stats import SearchStats

        run = ThreadedRun(
            value=1.0,
            stats=SearchStats(),
            wall_time=0.0,
            timings=(
                ThreadTiming(busy=1e-7, lock_wait=0.0, starve_wait=0.0, wall=1e-7),
                ThreadTiming(busy=0.0, lock_wait=0.0, starve_wait=0.0, wall=0.0),
            ),
            counters={},
        )
        snap = snapshot_from_threaded(run, workload="micro")
        assert snap.check_accounting() == []
        for proc in snap.processors:
            assert proc.tail_idle >= 0.0
        for fraction in (
            snap.busy_fraction,
            snap.starvation_fraction,
            snap.interference_fraction,
            snap.speculative_fraction,
        ):
            assert fraction == fraction  # not NaN
            assert fraction >= 0.0

    def test_multiproc_zero_wall_run(self):
        from repro.parallel.multiproc import MultiprocResult
        from repro.search.stats import SearchStats

        result = MultiprocResult(
            value=1.0,
            n_workers=2,
            wall_time=0.0,
            stats=SearchStats(),
            starvation_seconds=-1e-9,  # integrator round-off
            interference_seconds=0.0,
            per_worker={0: {"pid": 1234.0, "applied": 1e-7, "wasted": 0.0}},
        )
        snap = snapshot_from_multiproc(result, workload="micro")
        assert snap.check_accounting() == []
        assert snap.makespan == 0.0
        for proc in snap.processors:
            assert proc.starvation >= 0.0 and proc.tail_idle >= 0.0
        assert snap.busy_fraction == 0.0  # zero denominator, not NaN

    def test_multiproc_missing_worker_row_defaults_to_zero(self):
        from repro.parallel.multiproc import MultiprocResult
        from repro.search.stats import SearchStats

        result = MultiprocResult(
            value=0.0, n_workers=3, wall_time=0.5, stats=SearchStats(),
            per_worker={1: {"pid": 9.0, "applied": 0.25, "wasted": 0.0}},
        )
        snap = snapshot_from_multiproc(result, workload="micro")
        assert [p.busy for p in snap.processors] == [0.0, 0.25, 0.0]
        assert snap.check_accounting() == []
