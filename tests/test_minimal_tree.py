"""Unit tests for Knuth-Moore critical-node analysis (paper Section 2.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SearchError
from repro.search.minimal_tree import (
    Rules,
    count_critical_leaves,
    count_critical_nodes,
    is_critical,
    minimal_leaf_count_formula,
    minimal_tree_paths,
    node_type,
)


class TestNodeTyping:
    def test_root_is_type_one(self):
        assert node_type(()) == 1

    def test_first_child_of_one_is_one(self):
        assert node_type((0,)) == 1
        assert node_type((0, 0)) == 1

    def test_right_child_of_one_is_two(self):
        assert node_type((1,)) == 2
        assert node_type((3,)) == 2

    def test_first_child_of_two_is_three_deep(self):
        assert node_type((1, 0)) == 3

    def test_first_child_of_two_is_one_shallow(self):
        assert node_type((1, 0), Rules.SHALLOW) == 1

    def test_right_child_of_two_not_critical(self):
        assert node_type((1, 1)) is None
        assert node_type((1, 2), Rules.SHALLOW) is None

    def test_all_children_of_three_are_two(self):
        assert node_type((1, 0, 0)) == 2
        assert node_type((1, 0, 5)) == 2

    def test_descendant_of_noncritical_is_noncritical(self):
        assert node_type((1, 1, 0)) is None

    def test_is_critical_wrapper(self):
        assert is_critical((0, 2))
        assert not is_critical((2, 2))


class TestClosedForm:
    @given(st.integers(1, 8), st.integers(0, 8))
    def test_formula_matches_recurrence(self, degree, height):
        assert count_critical_leaves(degree, height) == minimal_leaf_count_formula(
            degree, height
        )

    def test_paper_example_values(self):
        # d^ceil(h/2) + d^floor(h/2) - 1
        assert minimal_leaf_count_formula(4, 6) == 64 + 64 - 1
        assert minimal_leaf_count_formula(4, 5) == 64 + 16 - 1
        assert minimal_leaf_count_formula(2, 2) == 3

    def test_degenerate_heights(self):
        assert minimal_leaf_count_formula(5, 0) == 1
        assert count_critical_leaves(5, 0, Rules.SHALLOW) == 1

    def test_shallow_tree_is_larger(self):
        """Skipping deep cutoffs enlarges the minimal tree (2nd-order)."""
        for degree, height in ((2, 6), (4, 6), (8, 4)):
            deep = count_critical_leaves(degree, height, Rules.DEEP)
            shallow = count_critical_leaves(degree, height, Rules.SHALLOW)
            assert shallow >= deep


class TestEnumeration:
    @given(st.integers(1, 4), st.integers(0, 5), st.sampled_from(list(Rules)))
    def test_enumerated_leaves_match_count(self, degree, height, rules):
        paths = list(minimal_tree_paths(degree, height, rules))
        leaves = [p for p in paths if len(p) == height]
        assert len(leaves) == count_critical_leaves(degree, height, rules)
        assert len(paths) == count_critical_nodes(degree, height, rules)

    @given(st.integers(1, 4), st.integers(0, 5))
    def test_every_enumerated_path_is_critical(self, degree, height):
        for path in minimal_tree_paths(degree, height):
            assert is_critical(path)

    def test_enumeration_has_no_duplicates(self):
        paths = list(minimal_tree_paths(3, 4))
        assert len(paths) == len(set(paths))


class TestValidation:
    def test_bad_degree(self):
        with pytest.raises(SearchError):
            count_critical_leaves(0, 3)

    def test_bad_height(self):
        with pytest.raises(SearchError):
            minimal_leaf_count_formula(2, -1)
