"""Stress test for the striped transposition table under real threads.

Many threads hammer one :class:`~repro.cache.StripedTT` with mixed
probes and stores over a deliberately overlapping key range, all under
the race detector's trace recorder.  Per-stripe locking shows up in the
trace as ACQUIRE/WRITE/RELEASE triples named by stripe; the offline
analysis must find them consistently locked (no data races, no lock
order edges — stripes are leaves and never nest).  Counter totals are
cross-checked against the exact number of operations issued, which a
torn read-modify-write on the shared tallies would break.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.cache import StripedTT
from repro.search.transposition import Bound, TTEntry
from repro.verify import trace as _trace
from repro.verify.racedetect import analyze

N_THREADS = 8
OPS_PER_THREAD = 2000
KEY_SPACE = 512  # far smaller than ops: every key is contended


def _hammer(
    table: StripedTT, seed: int, barrier: threading.Barrier, issued: list[list[int]]
) -> None:
    rng = random.Random(seed)
    probes = stores = 0
    barrier.wait()  # maximal overlap: everyone starts at once
    for _ in range(OPS_PER_THREAD):
        key = rng.randrange(KEY_SPACE)
        if rng.random() < 0.5:
            table.probe(key)
            probes += 1
        else:
            entry = TTEntry(float(seed), rng.randrange(1, 8), Bound.EXACT, None)
            table.store(key, entry)
            stores += 1
    issued[seed] = [probes, stores]


@pytest.mark.slow
class TestStripedTTStress:
    def test_eight_threads_trace_is_clean(self) -> None:
        table = StripedTT(capacity=KEY_SPACE // 2, n_stripes=8)
        barrier = threading.Barrier(N_THREADS)
        issued: list[list[int]] = [[0, 0] for _ in range(N_THREADS)]
        with _trace.tracing() as recorder:
            threads = [
                threading.Thread(target=_hammer, args=(table, seed, barrier, issued))
                for seed in range(N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        report = analyze(recorder.events)
        assert report.ok, report.summary()
        assert report.tasks == N_THREADS
        # Every table operation is one locked critical section.
        acquires = sum(1 for ev in recorder.events if ev.kind == _trace.ACQUIRE)
        assert acquires == N_THREADS * OPS_PER_THREAD

        # Counter conservation: a torn increment on the per-stripe hit
        # and miss tallies would make their sum fall short of the probes
        # issued.  (Stores are not conserved: depth-preferred replacement
        # silently drops a store shallower than the incumbent.)
        probes_issued = sum(counts[0] for counts in issued)
        stores_issued = sum(counts[1] for counts in issued)
        assert probes_issued + stores_issued == N_THREADS * OPS_PER_THREAD
        assert table.hits + table.misses == probes_issued
        assert 0 < table.stores <= stores_issued
        assert table.hits > 0 and table.misses > 0
        assert len(table) <= table.capacity

    def test_single_thread_equivalence_under_contention(self) -> None:
        """The contended table ends up state-equivalent to a serial replay
        of any one thread's winning stores: every key it can probe maps to
        some value a thread actually stored."""
        table = StripedTT(capacity=KEY_SPACE, n_stripes=4)
        barrier = threading.Barrier(N_THREADS)
        issued: list[list[int]] = [[0, 0] for _ in range(N_THREADS)]
        threads = [
            threading.Thread(target=_hammer, args=(table, seed, barrier, issued))
            for seed in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stored_values = {float(seed) for seed in range(N_THREADS)}
        for key in range(KEY_SPACE):
            entry = table.probe(key)
            if entry is not None:
                assert entry.value in stored_values
                assert 1 <= entry.depth < 8
